package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/graphdb"
	"ecrpq/internal/query"
	"ecrpq/internal/synchro"
)

// lineDB builds a labelled path graph: v0 -a-> v1 -a-> ... with a final -b->
// edge, plus a parallel branch.
func lineDB(t *testing.T) *graphdb.DB {
	t.Helper()
	db, err := graphdb.ParseString(`
alphabet a b
u a m1
m1 a m2
m2 b z
u b n1
n1 a n2
n2 a z
`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func strategies() []Options {
	return []Options{
		{Strategy: Generic},
		{Strategy: Generic, EagerMerge: true},
		{Strategy: Reduction},
		{Strategy: Auto},
	}
}

// evalAll runs the query under every strategy, asserts agreement, verifies
// witnesses, and returns the common verdict.
func evalAll(t *testing.T, db *graphdb.DB, q *query.Query) bool {
	t.Helper()
	var verdict *bool
	for _, opts := range strategies() {
		res, err := Evaluate(db, q, opts)
		if err != nil {
			t.Fatalf("strategy %v (merge=%v): %v", opts.Strategy, opts.EagerMerge, err)
		}
		if verdict == nil {
			v := res.Sat
			verdict = &v
		} else if *verdict != res.Sat {
			t.Fatalf("strategies disagree: %v (merge=%v) says %v, earlier said %v",
				opts.Strategy, opts.EagerMerge, res.Sat, *verdict)
		}
		if res.Sat {
			if err := VerifyWitness(db, q, res); err != nil {
				t.Fatalf("strategy %v (merge=%v): bad witness: %v", opts.Strategy, opts.EagerMerge, err)
			}
		}
	}
	return *verdict
}

func TestEqualLengthPaths(t *testing.T) {
	db := lineDB(t)
	a := db.Alphabet()
	// Two equal-length paths u→z exist (both have length 3).
	q := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Reach("x", "p2", "y").
		Rel(synchro.EqualLength(a, 2), "p1", "p2").
		MustBuild()
	if !evalAll(t, db, q) {
		t.Error("equal-length pair should exist")
	}
}

func TestEqualityVsEqualLength(t *testing.T) {
	db := lineDB(t)
	a := db.Alphabet()
	// The two u→z paths read aab and baa: equal length, not equal words.
	// Demand equality AND that both paths have length exactly 3 and differ
	// in start labels — here simply: equality plus one path starting with a,
	// the other with b, is unsatisfiable unless the paths coincide.
	q := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Reach("x", "p2", "y").
		Rel(synchro.Equality(a, 2), "p1", "p2").
		Lang("p1", "a(a|b)*").
		Lang("p2", "b(a|b)*").
		MustBuild()
	if evalAll(t, db, q) {
		t.Error("equal words with different first letters is unsatisfiable")
	}
	// Hamming distance ≤ 2 allows aab vs baa? They differ in positions 0 and
	// 2 → distance 2 → satisfiable.
	q2 := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Reach("x", "p2", "y").
		Rel(synchro.HammingAtMost(a, 2), "p1", "p2").
		Lang("p1", "a(a|b)*").
		Lang("p2", "b(a|b)*").
		MustBuild()
	if !evalAll(t, db, q2) {
		t.Error("hamming ≤ 2 should be satisfiable (aab vs baa)")
	}
	// Hamming ≤ 1 is not: any two distinct u→z equal-length... the only
	// length-3 paths are aab and baa at distance 2; p1 must start a, p2 b.
	q3 := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Reach("x", "p2", "y").
		Rel(synchro.HammingAtMost(a, 1), "p1", "p2").
		Lang("p1", "a(a|b)*").
		Lang("p2", "b(a|b)*").
		MustBuild()
	if evalAll(t, db, q3) {
		t.Error("hamming ≤ 1 should be unsatisfiable")
	}
}

func TestCRPQPlain(t *testing.T) {
	db := lineDB(t)
	a := db.Alphabet()
	q := query.NewBuilder(a).Edge("x", "a*b", "y").MustBuild()
	if !evalAll(t, db, q) {
		t.Error("a*b path exists (u→z via aab)")
	}
	q2 := query.NewBuilder(a).Edge("x", "bb", "y").MustBuild()
	if evalAll(t, db, q2) {
		t.Error("no bb path exists")
	}
}

func TestUnconstrainedPathVariable(t *testing.T) {
	db := lineDB(t)
	a := db.Alphabet()
	// p2 unconstrained: plain reachability.
	q := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Reach("y", "p2", "z").
		Lang("p1", "aa").
		MustBuild()
	if !evalAll(t, db, q) {
		t.Error("aa path then anything should exist (u→m2→z)")
	}
}

func TestEmptyPathSemantics(t *testing.T) {
	db := lineDB(t)
	a := db.Alphabet()
	// ε-path: x and y must coincide.
	q := query.NewBuilder(a).
		Reach("x", "p", "y").
		Lang("p", "ε").
		MustBuild()
	if !evalAll(t, db, q) {
		t.Error("empty path always exists (x=y)")
	}
	// Same-endpoint equality of two empty paths.
	q2 := query.NewBuilder(a).
		Reach("x", "p1", "x").
		Reach("x", "p2", "x").
		Rel(synchro.Equality(a, 2), "p1", "p2").
		MustBuild()
	if !evalAll(t, db, q2) {
		t.Error("two empty equal paths should exist")
	}
}

func TestSharedPathVariableAcrossAtoms(t *testing.T) {
	db := lineDB(t)
	a := db.Alphabet()
	// p2 participates in two relation atoms → one component of 3 tracks.
	q := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Reach("x", "p2", "y").
		Reach("x", "p3", "y").
		Rel(synchro.EqualLength(a, 2), "p1", "p2").
		Rel(synchro.EqualLength(a, 2), "p2", "p3").
		MustBuild()
	if !evalAll(t, db, q) {
		t.Error("three equal-length paths x→y should exist (take the same path)")
	}
}

func TestPrefixRelation(t *testing.T) {
	db := lineDB(t)
	a := db.Alphabet()
	// p1 a strict prefix shape: p1 from u ends at m2 reading aa, p2 from u
	// reads aab to z: prefix holds.
	q := query.NewBuilder(a).
		Reach("x", "p1", "y1").
		Reach("x", "p2", "y2").
		Rel(synchro.PrefixOf(a), "p1", "p2").
		Lang("p1", "aa").
		Lang("p2", "aab").
		MustBuild()
	if !evalAll(t, db, q) {
		t.Error("prefix pair should exist")
	}
}

func TestAnswersExample21(t *testing.T) {
	// The paper's Example 2.1: q(x, x') = ∃y x →p1 y ∧ x' →p2 y ∧
	// eq-len(p1, p2).
	db, err := graphdb.ParseString(`
alphabet a b
s1 a t
s2 b t
s3 a m
m a t
`)
	if err != nil {
		t.Fatal(err)
	}
	a := db.Alphabet()
	q := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Reach("xp", "p2", "y").
		Rel(synchro.EqualLength(a, 2), "p1", "p2").
		Free("x", "xp").
		MustBuild()
	for _, opts := range strategies() {
		got, err := Answers(db, q, opts)
		if err != nil {
			t.Fatalf("%v: %v", opts.Strategy, err)
		}
		// Every pair (u, u') where equal-length paths to a common vertex
		// exist. Notably (s1, s2) via t (lengths 1,1) and every (v, v)
		// (empty paths). Check a few certain members/non-members.
		set := make(map[[2]int]bool)
		for _, tup := range got {
			set[[2]int{tup[0], tup[1]}] = true
		}
		s1, _ := db.Lookup("s1")
		s2, _ := db.Lookup("s2")
		s3, _ := db.Lookup("s3")
		for v := 0; v < db.NumVertices(); v++ {
			if !set[[2]int{v, v}] {
				t.Errorf("%v: missing reflexive pair (%d,%d)", opts.Strategy, v, v)
			}
		}
		if !set[[2]int{s1, s2}] || !set[[2]int{s2, s1}] {
			t.Errorf("%v: missing (s1,s2) pair", opts.Strategy)
		}
		// s3 needs 2 steps to reach t; s1 needs 1; but s3→m (1 step)... is
		// there u' with a 1-step path to m? no other edge into m. And s3→t
		// (2 steps) pairs with any 2-step path to t: s3 itself only. But
		// (s3, s1): paths to t of equal length? s1's only path has length 1,
		// s3's has length 2 → no common vertex with equal lengths except...
		if set[[2]int{s3, s1}] {
			t.Errorf("%v: (s3,s1) should not be an answer", opts.Strategy)
		}
	}
}

func TestAnswersOnBooleanQueryFails(t *testing.T) {
	db := lineDB(t)
	q := query.NewBuilder(db.Alphabet()).Edge("x", "a", "y").MustBuild()
	if _, err := Answers(db, q, Options{}); err == nil {
		t.Error("Answers on Boolean query should error")
	}
}

func TestAlphabetMismatch(t *testing.T) {
	db := lineDB(t)
	other := alphabet.Lower(3)
	q := query.NewBuilder(other).Edge("x", "a", "y").MustBuild()
	if _, err := Evaluate(db, q, Options{}); err == nil {
		t.Error("alphabet size mismatch should error")
	}
}

func TestStateBudget(t *testing.T) {
	db := lineDB(t)
	a := db.Alphabet()
	q := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Reach("x", "p2", "y").
		Rel(synchro.EqualLength(a, 2), "p1", "p2").
		Lang("p1", "a+b").
		MustBuild()
	if _, err := Evaluate(db, q, Options{Strategy: Generic, MaxProductStates: 1}); err == nil {
		t.Error("tiny state budget should error")
	}
}

func TestEmptyDatabase(t *testing.T) {
	a := alphabet.Lower(2)
	db := graphdb.New(a)
	q := query.NewBuilder(a).Edge("x", "a", "y").MustBuild()
	for _, opts := range strategies() {
		res, err := Evaluate(db, q, opts)
		if err != nil {
			t.Fatalf("%v: %v", opts.Strategy, err)
		}
		if res.Sat {
			t.Errorf("%v: query on empty database should be unsatisfiable", opts.Strategy)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	db := lineDB(t)
	a := db.Alphabet()
	q := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Reach("x", "p2", "y").
		Rel(synchro.EqualLength(a, 2), "p1", "p2").
		MustBuild()
	res, err := Evaluate(db, q, Options{Strategy: Reduction})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StrategyUsed != Reduction || res.Stats.Components != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Stats.CQTuples == 0 {
		t.Error("reduction should materialize tuples")
	}
	res2, err := Evaluate(db, q, Options{Strategy: Generic, EagerMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.MergedStatesTotal == 0 {
		t.Error("eager merge should report merged states")
	}
}

func TestAutoStrategySelection(t *testing.T) {
	db := lineDB(t)
	a := db.Alphabet()
	// Small component → Reduction.
	q := query.NewBuilder(a).
		Reach("x", "p1", "y").Reach("x", "p2", "y").
		Rel(synchro.EqualLength(a, 2), "p1", "p2").
		MustBuild()
	res, err := Evaluate(db, q, Options{Strategy: Auto})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StrategyUsed != Reduction {
		t.Errorf("auto picked %v for a 2-track component", res.Stats.StrategyUsed)
	}
	// Large component (5 tracks) → Generic.
	b := query.NewBuilder(a)
	paths := []string{"q1", "q2", "q3", "q4", "q5"}
	for _, p := range paths {
		b.Reach("x", p, "y")
	}
	b.Rel(synchro.EqualLength(a, 5), paths...)
	q2 := b.MustBuild()
	res2, err := Evaluate(db, q2, Options{Strategy: Auto})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.StrategyUsed != Generic {
		t.Errorf("auto picked %v for a 5-track component", res2.Stats.StrategyUsed)
	}
}

// --- randomized cross-validation against a brute-force oracle ---

// oracle decides D ⊨ q by enumerating node assignments and bounded-length
// path combinations.
func oracle(db *graphdb.DB, q *query.Query, maxLen int) bool {
	nodeVars := q.NodeVars()
	n := db.NumVertices()
	assign := make(map[string]int)
	// All paths between u,v up to maxLen, per (u,v).
	var pathsBetween func(u, v int) []graphdb.Path
	pathsBetween = func(u, v int) []graphdb.Path {
		var out []graphdb.Path
		var rec func(cur int, edges []graphdb.Edge)
		rec = func(cur int, edges []graphdb.Edge) {
			if cur == v {
				out = append(out, graphdb.Path{Start: u, Edges: append([]graphdb.Edge(nil), edges...)})
			}
			if len(edges) >= maxLen {
				return
			}
			for _, e := range db.Out(cur) {
				rec(e.To, append(edges, e))
			}
		}
		rec(u, nil)
		return out
	}
	var tryAssign func(i int) bool
	tryAssign = func(i int) bool {
		if i == len(nodeVars) {
			// Choose paths per path variable.
			pvs := q.PathVars()
			choices := make([][]graphdb.Path, len(pvs))
			for k, pv := range pvs {
				ra, _ := q.ReachAtomFor(pv)
				choices[k] = pathsBetween(assign[ra.Src], assign[ra.Dst])
				if len(choices[k]) == 0 {
					return false
				}
			}
			chosen := make(map[string]graphdb.Path, len(pvs))
			var pick func(k int) bool
			pick = func(k int) bool {
				if k == len(pvs) {
					for _, ra := range q.Rels {
						words := make([]alphabet.Word, len(ra.Paths))
						for j, pv := range ra.Paths {
							words[j] = chosen[pv].Label()
						}
						ok, err := ra.Rel.Contains(words...)
						if err != nil || !ok {
							return false
						}
					}
					return true
				}
				for _, p := range choices[k] {
					chosen[pvs[k]] = p
					if pick(k + 1) {
						return true
					}
				}
				return false
			}
			return pick(0)
		}
		for d := 0; d < n; d++ {
			assign[nodeVars[i]] = d
			if tryAssign(i + 1) {
				return true
			}
		}
		return false
	}
	return tryAssign(0)
}

func randomDB(rng *rand.Rand, a *alphabet.Alphabet, n, e int) *graphdb.DB {
	db := graphdb.New(a)
	for i := 0; i < n; i++ {
		db.MustAddVertex("")
	}
	for i := 0; i < e; i++ {
		db.MustAddEdge(rng.Intn(n), alphabet.Symbol(rng.Intn(a.Size())), rng.Intn(n))
	}
	return db
}

func randomQuery(rng *rand.Rand, a *alphabet.Alphabet) *query.Query {
	b := query.NewBuilder(a)
	nodeVars := []string{"x", "y", "z"}
	nPaths := 1 + rng.Intn(3)
	var paths []string
	for i := 0; i < nPaths; i++ {
		p := []string{"p1", "p2", "p3"}[i]
		paths = append(paths, p)
		b.Reach(nodeVars[rng.Intn(len(nodeVars))], p, nodeVars[rng.Intn(len(nodeVars))])
	}
	rels := []func() *synchro.Relation{
		func() *synchro.Relation { return synchro.Equality(a, 2) },
		func() *synchro.Relation { return synchro.EqualLength(a, 2) },
		func() *synchro.Relation { return synchro.PrefixOf(a) },
		func() *synchro.Relation { return synchro.HammingAtMost(a, 1) },
	}
	nRels := rng.Intn(3)
	for i := 0; i < nRels && len(paths) >= 2; i++ {
		r := rels[rng.Intn(len(rels))]()
		i1 := rng.Intn(len(paths))
		i2 := rng.Intn(len(paths))
		for i2 == i1 {
			i2 = rng.Intn(len(paths))
		}
		b.Rel(r, paths[i1], paths[i2])
	}
	// Occasionally a language constraint.
	if rng.Intn(2) == 0 {
		exprs := []string{"a*", "ab", "(a|b)*", "b+", "a?"}
		b.Lang(paths[rng.Intn(len(paths))], exprs[rng.Intn(len(exprs))])
	}
	return b.MustBuild()
}

func TestStrategiesAgreeWithOracleProperty(t *testing.T) {
	a := alphabet.Lower(2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, a, 2+rng.Intn(3), 2+rng.Intn(5))
		q := randomQuery(rng, a)
		want := oracle(db, q, 4)
		for _, opts := range strategies() {
			res, err := Evaluate(db, q, opts)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if res.Sat {
				if err := VerifyWitness(db, q, res); err != nil {
					t.Logf("seed %d: bad witness: %v", seed, err)
					return false
				}
			}
			// The oracle is bounded: oracle-sat implies evaluator-sat; and
			// evaluator-sat witnesses were verified above. Oracle-unsat with
			// evaluator-sat is fine only if the witness uses paths longer
			// than the oracle bound — witness verification already covers
			// soundness, so only check the implication.
			if want && !res.Sat {
				t.Logf("seed %d: oracle sat but %v unsat", seed, opts.Strategy)
				return false
			}
			if !want && res.Sat {
				// Check the witness really needs a long path.
				long := false
				for _, p := range res.Paths {
					if p.Len() > 4 {
						long = true
					}
				}
				if !long {
					t.Logf("seed %d: %v sat with short paths but oracle unsat", seed, opts.Strategy)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDecompose(t *testing.T) {
	a := alphabet.Lower(2)
	q := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Reach("x", "p2", "y").
		Reach("y", "p3", "z").
		Reach("z", "p4", "z").
		Rel(synchro.EqualLength(a, 2), "p1", "p2").
		Rel(synchro.Universal(a, 2), "p2", "p3"). // universal: no semantic link
		MustBuild()
	comps, frees, err := decompose(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	if len(comps[0].tracks) != 2 {
		t.Errorf("component tracks = %d, want 2", len(comps[0].tracks))
	}
	if len(frees) != 2 {
		t.Errorf("free tracks = %d, want 2 (p3 via universal only, p4 unconstrained)", len(frees))
	}
}

func TestVerifyWitnessRejects(t *testing.T) {
	db := lineDB(t)
	a := db.Alphabet()
	q := query.NewBuilder(a).Edge("x", "a", "y").MustBuild()
	res, err := Evaluate(db, q, Options{})
	if err != nil || !res.Sat {
		t.Fatalf("setup: %v %v", err, res)
	}
	// Tamper: wrong endpoint.
	bad := &Result{Sat: true, Nodes: map[string]int{}, Paths: map[string]graphdb.Path{}}
	for k, v := range res.Nodes {
		bad.Nodes[k] = v
	}
	for k, v := range res.Paths {
		bad.Paths[k] = v
	}
	bad.Nodes["y"] = (bad.Nodes["y"] + 1) % db.NumVertices()
	if err := VerifyWitness(db, q, bad); err == nil {
		t.Error("tampered endpoint should fail verification")
	}
	if err := VerifyWitness(db, q, &Result{Sat: false}); err == nil {
		t.Error("unsat result should fail verification")
	}
}

func TestAnswersStrategiesAgreeProperty(t *testing.T) {
	a := alphabet.Lower(2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, a, 2+rng.Intn(3), 2+rng.Intn(5))
		// Free query: q(x) with a 2-track component and a free track.
		q := query.NewBuilder(a).
			Reach("x", "p1", "y").
			Reach("x", "p2", "y").
			Reach("y", "p3", "z").
			Rel(synchro.EqualLength(a, 2), "p1", "p2").
			Free("x", "z").
			MustBuild()
		genAns, err := Answers(db, q, Options{Strategy: Generic})
		if err != nil {
			return false
		}
		redAns, err := Answers(db, q, Options{Strategy: Reduction})
		if err != nil {
			return false
		}
		if len(genAns) != len(redAns) {
			t.Logf("seed %d: %d vs %d answers", seed, len(genAns), len(redAns))
			return false
		}
		for i := range genAns {
			for j := range genAns[i] {
				if genAns[i][j] != redAns[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAnswersReductionFastPathUsed(t *testing.T) {
	// The fast path must produce identical results to pinning; spot-check
	// that it actually activates for a reduction-eligible query by ensuring
	// no error and correct membership.
	db := lineDB(t)
	a := db.Alphabet()
	q := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Rel(synchro.Equality(a, 1).WithName("any"), "p1").
		Free("x", "y").
		MustBuild()
	_ = q
	// Equality arity 1 is invalid; use a language atom instead.
	q2 := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Lang("p1", "a+").
		Free("x", "y").
		MustBuild()
	ans, err := Answers(db, q2, Options{Strategy: Reduction})
	if err != nil {
		t.Fatal(err)
	}
	u, _ := db.Lookup("u")
	m1, _ := db.Lookup("m1")
	m2, _ := db.Lookup("m2")
	want := map[[2]int]bool{
		{u, m1}: true, {u, m2}: true, {m1, m2}: true,
		// n-branch single a-steps:
		// n1 -a-> n2 -a-> z
	}
	n1, _ := db.Lookup("n1")
	n2, _ := db.Lookup("n2")
	z, _ := db.Lookup("z")
	want[[2]int{n1, n2}] = true
	want[[2]int{n1, z}] = true
	want[[2]int{n2, z}] = true
	got := map[[2]int]bool{}
	for _, tup := range ans {
		got[[2]int{tup[0], tup[1]}] = true
	}
	if len(got) != len(want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing answer %v", k)
		}
	}
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	a := alphabet.Lower(2)
	rng := rand.New(rand.NewSource(99))
	db := randomDB(rng, a, 8, 20)
	q := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Reach("x", "p2", "y").
		Rel(synchro.EqualLength(a, 2), "p1", "p2").
		Free("x", "y").
		MustBuild()
	seq, err := Answers(db, q, Options{Strategy: Reduction})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, -1} {
		par, err := Answers(db, q, Options{Strategy: Reduction, Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d answers vs %d sequential", workers, len(par), len(seq))
		}
		for i := range seq {
			for j := range seq[i] {
				if par[i][j] != seq[i][j] {
					t.Fatalf("workers=%d: answers differ at %d", workers, i)
				}
			}
		}
	}
}

func TestParallelSweepBudgetError(t *testing.T) {
	db := lineDB(t)
	a := db.Alphabet()
	q := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Reach("x", "p2", "y").
		Rel(synchro.EqualLength(a, 2), "p1", "p2").
		MustBuild()
	if _, err := Evaluate(db, q, Options{Strategy: Reduction, MaxProductStates: 1, Parallelism: 4}); err == nil {
		t.Error("tiny state budget should surface from workers")
	}
}

// TestMonotonicityProperty: ECRPQ has no negation, so adding edges can never
// turn a satisfiable instance unsatisfiable.
func TestMonotonicityProperty(t *testing.T) {
	a := alphabet.Lower(2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, a, 2+rng.Intn(3), 2+rng.Intn(4))
		q := randomQuery(rng, a)
		before, err := Evaluate(db, q, Options{Strategy: Generic})
		if err != nil {
			return false
		}
		// Add a few random edges.
		n := db.NumVertices()
		for i := 0; i < 3; i++ {
			db.MustAddEdge(rng.Intn(n), alphabet.Symbol(rng.Intn(a.Size())), rng.Intn(n))
		}
		after, err := Evaluate(db, q, Options{Strategy: Generic})
		if err != nil {
			return false
		}
		if before.Sat && !after.Sat {
			t.Logf("seed %d: adding edges broke satisfiability", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDisjointJunkInvarianceProperty: unioning an unrelated component into
// the database never changes Boolean satisfiability of a connected query...
// it can only add satisfying assignments, and removing reachability it
// cannot. (Satisfiability is preserved in both directions for queries whose
// node variables can be mapped anywhere: sat stays sat; unsat can become sat
// only using the junk part, which is a genuine new witness — so we only
// check sat ⇒ sat.)
func TestDisjointJunkInvarianceProperty(t *testing.T) {
	a := alphabet.Lower(2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, a, 2+rng.Intn(3), 3+rng.Intn(4))
		q := randomQuery(rng, a)
		before, err := Evaluate(db, q, Options{Strategy: Generic})
		if err != nil {
			return false
		}
		junk := randomDB(rng, a, 1+rng.Intn(3), rng.Intn(4))
		if _, err := db.DisjointUnion(junk); err != nil {
			return false
		}
		after, err := Evaluate(db, q, Options{Strategy: Generic})
		if err != nil {
			return false
		}
		return !before.Sat || after.Sat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNaiveBoundedAgreesWithEngineProperty(t *testing.T) {
	a := alphabet.Lower(2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, a, 2+rng.Intn(3), 2+rng.Intn(4))
		q := randomQuery(rng, a)
		naive, err := NaiveBounded(db, q, 4)
		if err != nil {
			return false
		}
		engine, err := Evaluate(db, q, Options{Strategy: Generic})
		if err != nil {
			return false
		}
		if naive.Sat {
			if err := VerifyWitness(db, q, naive); err != nil {
				t.Logf("seed %d: naive witness invalid: %v", seed, err)
				return false
			}
			if !engine.Sat {
				t.Logf("seed %d: naive sat, engine unsat", seed)
				return false
			}
		}
		// Engine-sat with naive-unsat is possible only via long paths.
		if engine.Sat && !naive.Sat {
			for _, p := range engine.Paths {
				if p.Len() > 4 {
					return true
				}
			}
			t.Logf("seed %d: engine sat with short paths, naive unsat", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNaiveBoundedEdgeCases(t *testing.T) {
	a := alphabet.Lower(1)
	empty := graphdb.New(a)
	q := query.NewBuilder(a).Edge("x", "a", "y").MustBuild()
	res, err := NaiveBounded(empty, q, 2)
	if err != nil || res.Sat {
		t.Errorf("empty db: %v %v", err, res)
	}
	db := graphdb.New(a)
	db.MustAddVertex("v")
	if _, err := NaiveBounded(db, q, -1); err == nil {
		t.Error("negative bound should error")
	}
}

func TestSimplifyPreservesSemanticsProperty(t *testing.T) {
	a := alphabet.Lower(2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, a, 2+rng.Intn(3), 2+rng.Intn(5))
		q := randomQuery(rng, a)
		// Inject redundancy: duplicate the first relation atom and add a
		// universal atom.
		if len(q.Rels) > 0 {
			q.Rels = append(q.Rels, q.Rels[0])
		}
		q.Rels = append(q.Rels, query.RelAtom{
			Rel:   synchro.Universal(a, 1),
			Paths: []string{q.PathVars()[0]},
		})
		s := query.Simplify(q)
		r1, err := Evaluate(db, q, Options{Strategy: Generic})
		if err != nil {
			return false
		}
		r2, err := Evaluate(db, s, Options{Strategy: Generic})
		if err != nil {
			return false
		}
		return r1.Sat == r2.Sat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
