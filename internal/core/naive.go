package core

import (
	"fmt"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/graphdb"
	"ecrpq/internal/query"
)

// NaiveBounded is the brute-force baseline evaluator: enumerate node
// assignments, then all path combinations up to maxPathLen edges per path
// variable, checking relation membership on the label tuples. It is sound,
// and complete relative to the bound; with
//
//	maxPathLen ≥ (∏ relation-NFA states) · |V|^t · 2^t
//
// per component it is fully complete (a pumping argument on the component
// product), but that bound is astronomically large — which is precisely why
// the paper's algorithms matter. Intended as the comparison baseline for the
// ablation suite and as a differential-testing oracle.
//
//ecrpq:charged deliberately ungoverned baseline oracle; never runs on the served path
func NaiveBounded(db *graphdb.DB, q *query.Query, maxPathLen int) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if maxPathLen < 0 {
		return nil, fmt.Errorf("core: negative path bound %d", maxPathLen)
	}
	nodeVars := q.NodeVars()
	n := db.NumVertices()
	res := &Result{}
	if n == 0 {
		res.Sat = len(nodeVars) == 0
		if res.Sat {
			res.Nodes = map[string]int{}
			res.Paths = map[string]graphdb.Path{}
		}
		return res, nil
	}
	assign := make(map[string]int, len(nodeVars))
	chosen := make(map[string]graphdb.Path, len(q.Reach))

	pathsBetween := func(u, v int) []graphdb.Path {
		var out []graphdb.Path
		var rec func(cur int, edges []graphdb.Edge)
		rec = func(cur int, edges []graphdb.Edge) {
			if cur == v {
				out = append(out, graphdb.Path{Start: u, Edges: append([]graphdb.Edge(nil), edges...)})
			}
			if len(edges) >= maxPathLen {
				return
			}
			for _, e := range db.Out(cur) {
				rec(e.To, append(edges, e))
			}
		}
		rec(u, nil)
		return out
	}
	checkRels := func() bool {
		for _, ra := range q.Rels {
			words := make([]alphabet.Word, len(ra.Paths))
			for i, p := range ra.Paths {
				words[i] = chosen[p].Label()
			}
			in, err := ra.Rel.Contains(words...)
			if err != nil || !in {
				return false
			}
		}
		return true
	}
	var pickPaths func(i int) bool
	pickPaths = func(i int) bool {
		if i == len(q.Reach) {
			return checkRels()
		}
		ra := q.Reach[i]
		for _, p := range pathsBetween(assign[ra.Src], assign[ra.Dst]) {
			chosen[ra.Path] = p
			if pickPaths(i + 1) {
				return true
			}
		}
		delete(chosen, ra.Path)
		return false
	}
	var pickNodes func(i int) bool
	pickNodes = func(i int) bool {
		if i == len(nodeVars) {
			return pickPaths(0)
		}
		for d := 0; d < n; d++ {
			assign[nodeVars[i]] = d
			if pickNodes(i + 1) {
				return true
			}
		}
		delete(assign, nodeVars[i])
		return false
	}
	if pickNodes(0) {
		res.Sat = true
		res.Nodes = make(map[string]int, len(assign))
		for k, v := range assign {
			res.Nodes[k] = v
		}
		res.Paths = make(map[string]graphdb.Path, len(chosen))
		for k, v := range chosen {
			res.Paths[k] = v
		}
	}
	return res, nil
}
