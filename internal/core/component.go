// Package core implements the paper's primary contribution: evaluation of
// ECRPQ queries over graph databases, with the complexity-aware strategies
// the characterization theorems describe.
//
// Two evaluation strategies are provided:
//
//   - Generic: the algorithm behind the PSPACE upper bound (Proposition 2.2)
//     and the XNL membership argument (Lemma 4.2) — backtrack over node
//     variables and, per relation component, search the synchronized product
//     of the component's relation NFAs with one database pointer per path
//     variable.
//
//   - Reduction: the algorithm behind the NP and PTIME upper bounds
//     (Lemma 4.3) — merge each component's relations (Lemma 4.1), materialize
//     the induced 2t-ary endpoint relations R' over database vertices, and
//     evaluate the resulting conjunctive query with the tree-decomposition
//     dynamic program (Proposition 2.3).
//
// Both return full witnesses (node assignment plus concrete paths).
package core

import (
	"context"
	"fmt"
	"sort"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/faultinject"
	"ecrpq/internal/govern"
	"ecrpq/internal/graphdb"
	"ecrpq/internal/invariant"
	"ecrpq/internal/query"
	"ecrpq/internal/synchro"
)

// track identifies one path variable of a component: its name and endpoint
// node variables.
type track struct {
	pathVar string
	srcVar  string
	dstVar  string
}

// component is a "semantic component" of the query: a maximal set of path
// variables connected through non-universal relation atoms. Universal atoms
// impose no constraint and so do not connect path variables semantically
// (they still count for the structural measures; see internal/twolevel).
type component struct {
	tracks    []track
	rels      []*synchro.Relation // non-universal; explicit NFAs
	relTracks [][]int             // relation → component-track indices
	nodeVars  []string            // distinct node variables, sorted
}

// freeTrack is a path variable in no non-universal relation atom: its only
// constraint is plain reachability.
type freeTrack struct {
	pathVar string
	srcVar  string
	dstVar  string
}

// decompose splits a validated query into semantic components and free
// tracks. The query need not be normalized (universal atoms are skipped
// either way).
//
//ecrpq:charged all allocation is query-sized (components, tracks, union-find), independent of the database
func decompose(q *query.Query) ([]component, []freeTrack, error) {
	paths := q.PathVars()
	pathIdx := make(map[string]int, len(paths))
	for i, p := range paths {
		pathIdx[p] = i
	}
	parent := make([]int, len(paths))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		//ecrpq:bounded union-find with path halving: every step strictly shortens the chain to the root
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var nonUniversal []query.RelAtom
	for _, ra := range q.Rels {
		if ra.Rel.IsUniversal() {
			continue
		}
		if ra.Rel.RawNFA() == nil {
			return nil, nil, fmt.Errorf("core: relation %q has no automaton", ra.Rel.Name())
		}
		nonUniversal = append(nonUniversal, ra)
		first := pathIdx[ra.Paths[0]]
		for _, p := range ra.Paths[1:] {
			a, b := find(first), find(pathIdx[p])
			if a != b {
				parent[a] = b
			}
		}
	}
	compOf := make(map[int]*component)
	covered := make(map[string]bool)
	for _, ra := range nonUniversal {
		for _, p := range ra.Paths {
			covered[p] = true
		}
	}
	var order []int
	trackPos := make(map[string]int) // path var → index within its component
	for i, p := range paths {
		if !covered[p] {
			continue
		}
		r := find(i)
		c, ok := compOf[r]
		if !ok {
			c = &component{}
			compOf[r] = c
			order = append(order, r)
		}
		atom, _ := q.ReachAtomFor(p)
		trackPos[p] = len(c.tracks)
		c.tracks = append(c.tracks, track{pathVar: p, srcVar: atom.Src, dstVar: atom.Dst})
	}
	for _, ra := range nonUniversal {
		r := find(pathIdx[ra.Paths[0]])
		c := compOf[r]
		idxs := make([]int, len(ra.Paths))
		for i, p := range ra.Paths {
			idxs[i] = trackPos[p]
		}
		c.rels = append(c.rels, ra.Rel)
		c.relTracks = append(c.relTracks, idxs)
	}
	var comps []component
	for _, r := range order {
		c := compOf[r]
		seen := make(map[string]bool)
		for _, t := range c.tracks {
			for _, v := range []string{t.srcVar, t.dstVar} {
				if !seen[v] {
					seen[v] = true
					c.nodeVars = append(c.nodeVars, v)
				}
			}
		}
		sort.Strings(c.nodeVars)
		comps = append(comps, *c)
	}
	var frees []freeTrack
	for _, p := range paths {
		if covered[p] {
			continue
		}
		atom, _ := q.ReachAtomFor(p)
		frees = append(frees, freeTrack{pathVar: p, srcVar: atom.Src, dstVar: atom.Dst})
	}
	return comps, frees, nil
}

// mergeComponent applies Lemma 4.1: it joins the component's relations into
// a single relation over the component's tracks, so the component behaves as
// one hyperedge.
func mergeComponent(a *alphabet.Alphabet, c *component) (*synchro.Relation, error) {
	return synchro.Join(a, len(c.tracks), c.rels, c.relTracks)
}

// productState is a search state of the component product: one NFA state per
// relation, one database vertex per track, and the set of finished tracks.
type productState struct {
	relStates []int
	verts     []int
	done      uint64
}

func (s productState) key() string {
	buf := make([]byte, 0, 4*(len(s.relStates)+len(s.verts))+8)
	put := func(v int) {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	for _, q := range s.relStates {
		put(q)
	}
	for _, v := range s.verts {
		put(v)
	}
	put(int(s.done))
	put(int(s.done >> 32))
	return string(buf)
}

// stepRecord remembers how a state was reached, for witness reconstruction.
type stepRecord struct {
	prev   int
	letter alphabet.Tuple
	moved  []int // new vertex per track (same length as tracks); -1 = unchanged
}

// productSearch explores the synchronized product of the component's
// relation NFAs with the database, starting every track at srcs[i]. It calls
// accept on each accepting product state (return true to stop the search and
// make productSearch return that state's index). maxStates caps exploration
// (0 = unlimited); exceeding it returns an error.
//
// This is exactly the nondeterministic procedure of Lemma 4.2, determinized
// by breadth-first search: guess a joint convolution letter consistent with
// every relation NFA (components that have exhausted their words stall), and
// advance one database pointer per non-padded track along a matching edge.
// ctx is polled every cancelCheckInterval states.
func productSearch(
	ctx context.Context,
	db *graphdb.DB,
	c *component,
	srcs []int,
	accept func(st productState) bool,
	maxStates int,
) (found int, states []productState, parents []stepRecord, err error) {
	t := len(c.tracks)
	if t > 64 {
		return -1, nil, nil, fmt.Errorf("core: component with %d tracks exceeds the 64-track limit", t)
	}
	// Byte accounting: each recorded state costs a productState, a
	// stepRecord, and an index entry; the whole table is released when the
	// search returns (witness reconstruction from the returned slices is
	// short-lived, so the transient under-count is acceptable).
	mem := govern.MeterFrom(ctx)
	defer mem.Close()
	perState := int64(192 + 24*t + 16*len(c.rels))
	chargedStates := 0
	nfas := make([]*nfaView, len(c.rels))
	for i, r := range c.rels {
		nfas[i] = newNFAView(r)
	}
	idx := make(map[string]int)
	push := func(st productState, rec stepRecord) int {
		k := st.key()
		if i, ok := idx[k]; ok {
			return i
		}
		i := len(states)
		idx[k] = i
		states = append(states, st)
		parents = append(parents, rec)
		return i
	}
	// Start states: all combinations of relation start states.
	var startCombos [][]int
	var build func(i int, cur []int)
	build = func(i int, cur []int) {
		if i == len(nfas) {
			startCombos = append(startCombos, append([]int(nil), cur...))
			return
		}
		for _, q := range nfas[i].starts {
			build(i+1, append(cur, q))
		}
	}
	build(0, nil)
	for _, combo := range startCombos {
		st := productState{relStates: combo, verts: append([]int(nil), srcs...), done: 0}
		push(st, stepRecord{prev: -1})
	}
	const unset = alphabet.Unset
	for qi := 0; qi < len(states); qi++ {
		if qi%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return -1, nil, nil, err
			}
			if err := faultinject.Point("core.budget"); err != nil {
				return -1, nil, nil, fmt.Errorf("core: product search aborted: %w", err)
			}
			if mem != nil && len(states) > chargedStates {
				if err := mem.Grow(int64(len(states)-chargedStates) * perState); err != nil {
					return -1, nil, nil, fmt.Errorf("core: product search: %w", err)
				}
				chargedStates = len(states)
			}
		}
		st := states[qi]
		if acceptState(nfas, st) && accept(st) {
			return qi, states, parents, nil
		}
		if maxStates > 0 && len(states) > maxStates {
			return -1, nil, nil, fmt.Errorf("core: product exceeded the state budget of %d", maxStates)
		}
		joint := make([]alphabet.Symbol, t)
		for i := range joint {
			joint[i] = unset
		}
		nextRel := make([]int, len(nfas))
		var overRels func(i int)
		overRels = func(i int) {
			if i == len(nfas) {
				expandTracks(db, c, st, joint, nextRel, qi, push)
				return
			}
			nfas[i].transitions(st.relStates[i], func(tp alphabet.Tuple, to int) {
				var touched []int
				ok := true
				for k, s := range tp {
					mt := c.relTracks[i][k]
					if joint[mt] == unset {
						joint[mt] = s
						touched = append(touched, mt)
					} else if joint[mt] != s {
						ok = false
						break
					}
				}
				if ok {
					nextRel[i] = to
					overRels(i + 1)
				}
				for _, mt := range touched {
					joint[mt] = unset
				}
			})
			// Stall: relation i has finished its tracks (all pad onward).
			var touched []int
			ok := true
			for _, mt := range c.relTracks[i] {
				if joint[mt] == unset {
					joint[mt] = alphabet.Pad
					touched = append(touched, mt)
				} else if joint[mt] != alphabet.Pad {
					ok = false
					break
				}
			}
			if ok {
				nextRel[i] = st.relStates[i]
				overRels(i + 1)
			}
			for _, mt := range touched {
				joint[mt] = unset
			}
		}
		overRels(0)
	}
	return -1, states, parents, nil
}

// expandTracks advances database pointers for a fully-determined joint
// letter: each non-pad track must move along a matching edge (all edge
// choices are explored); pad tracks must already be consistent with the done
// mask and keep their vertex.
func expandTracks(
	db *graphdb.DB,
	c *component,
	st productState,
	joint []alphabet.Symbol,
	nextRel []int,
	from int,
	push func(productState, stepRecord) int,
) {
	t := len(c.tracks)
	// Validity: all-pad letters do not exist in convolutions; done tracks
	// must stay padded.
	allPad := true
	for i := 0; i < t; i++ {
		if joint[i] != alphabet.Pad {
			allPad = false
			if st.done&(1<<uint(i)) != 0 {
				return // resumed after padding: invalid convolution
			}
		}
	}
	if allPad {
		return
	}
	newDone := st.done
	for i := 0; i < t; i++ {
		if joint[i] == alphabet.Pad {
			newDone |= 1 << uint(i)
		}
	}
	verts := make([]int, t)
	copy(verts, st.verts)
	moved := make([]int, t)
	for i := range moved {
		moved[i] = -1
	}
	var overTracks func(i int)
	overTracks = func(i int) {
		if i == t {
			nst := productState{
				relStates: append([]int(nil), nextRel...),
				verts:     append([]int(nil), verts...),
				done:      newDone,
			}
			push(nst, stepRecord{
				prev:   from,
				letter: append(alphabet.Tuple(nil), joint...),
				moved:  append([]int(nil), moved...),
			})
			return
		}
		if joint[i] == alphabet.Pad {
			overTracks(i + 1)
			return
		}
		cur := st.verts[i]
		for _, e := range db.Out(cur) {
			if e.Label != joint[i] {
				continue
			}
			verts[i] = e.To
			moved[i] = e.To
			overTracks(i + 1)
		}
		verts[i] = cur
		moved[i] = -1
	}
	overTracks(0)
}

func acceptState(nfas []*nfaView, st productState) bool {
	for i, v := range nfas {
		if !v.accept[st.relStates[i]] {
			return false
		}
	}
	return true
}

// nfaView caches a relation NFA's decoded transitions for fast iteration.
type nfaView struct {
	starts []int
	accept []bool
	trans  [][]decodedTrans
}

type decodedTrans struct {
	tuple alphabet.Tuple
	to    int
}

func newNFAView(r *synchro.Relation) *nfaView {
	nfa := r.RawNFA()
	n := nfa.NumStates()
	v := &nfaView{starts: nfa.StartStates(), accept: make([]bool, n), trans: make([][]decodedTrans, n)}
	for q := 0; q < n; q++ {
		v.accept[q] = nfa.IsAccept(q)
	}
	nfa.Transitions(func(p int, l string, q int) {
		t, err := alphabet.TupleFromKey(l)
		invariant.NoError(err, "core: malformed relation letter")
		v.trans[p] = append(v.trans[p], decodedTrans{tuple: t, to: q})
	})
	return v
}

func (v *nfaView) transitions(q int, f func(t alphabet.Tuple, to int)) {
	for _, tr := range v.trans[q] {
		f(tr.tuple, tr.to)
	}
}

// reconstructPaths rebuilds one database path per track from the parent
// chain ending at state index goal.
//
//ecrpq:charged output-sized: the states/parents arrays it walks were charged by the product search that built them
func reconstructPaths(c *component, srcs []int, states []productState, parents []stepRecord, goal int) []graphdb.Path {
	t := len(c.tracks)
	type step struct {
		letter alphabet.Tuple
		moved  []int
	}
	var chain []step
	for i := goal; parents[i].prev >= 0; i = parents[i].prev {
		chain = append(chain, step{parents[i].letter, parents[i].moved})
	}
	paths := make([]graphdb.Path, t)
	for i := range paths {
		paths[i] = graphdb.Path{Start: srcs[i]}
	}
	for k := len(chain) - 1; k >= 0; k-- {
		s := chain[k]
		for i := 0; i < t; i++ {
			if s.moved[i] >= 0 {
				paths[i].Edges = append(paths[i].Edges, graphdb.Edge{Label: s.letter[i], To: s.moved[i]})
			}
		}
	}
	return paths
}

// checkComponent decides whether, with the given per-track endpoints, the
// component's relational constraints can be satisfied by concrete paths, and
// returns such paths. The existence check runs on the packed fast product
// when possible; witness reconstruction re-runs the recording search only on
// success.
func checkComponent(ctx context.Context, db *graphdb.DB, c *component, srcs, dsts []int, maxStates int) ([]graphdb.Path, bool, error) {
	if fp := newFastProduct(db, c); fp != nil {
		defer fp.releaseMem()
		found, err := fp.Run(ctx, srcs, func(verts []int) bool {
			for i, v := range verts {
				if v != dsts[i] {
					return false
				}
			}
			return true
		}, maxStates)
		if err != nil {
			return nil, false, err
		}
		if !found {
			return nil, false, nil
		}
	}
	goal, states, parents, err := productSearch(ctx, db, c, srcs, func(st productState) bool {
		for i, v := range st.verts {
			if v != dsts[i] {
				return false
			}
		}
		return true
	}, maxStates)
	if err != nil {
		return nil, false, err
	}
	if goal < 0 {
		return nil, false, nil
	}
	return reconstructPaths(c, srcs, states, parents, goal), true, nil
}

// componentReachSet computes, for fixed sources, every tuple of destination
// vertices reachable by satisfying paths — the building block for
// materializing the Lemma 4.3 relations R'. When fp is non-nil it is used
// (and reused across calls, e.g. over a source sweep); pass nil to fall back
// to the general search. Tuples are returned in lexicographic order: the
// product search's discovery order depends on map iteration and would
// differ run to run, and streaming enumeration (the /v1/enumerate cursor)
// needs the same sequence on every call.
func componentReachSet(ctx context.Context, db *graphdb.DB, c *component, fp *fastProduct, srcs []int, maxStates int) ([][]int, error) {
	seen := make(map[string]bool)
	var out [][]int
	if fp != nil {
		_, err := fp.Run(ctx, srcs, func(verts []int) bool {
			k := key4(verts)
			if !seen[k] {
				seen[k] = true
				out = append(out, append([]int(nil), verts...))
			}
			return false // keep searching
		}, maxStates)
		if err != nil {
			return nil, err
		}
	} else {
		_, _, _, err := productSearch(ctx, db, c, srcs, func(st productState) bool {
			k := key4(st.verts)
			if !seen[k] {
				seen[k] = true
				out = append(out, append([]int(nil), st.verts...))
			}
			return false // keep searching
		}, maxStates)
		if err != nil {
			return nil, err
		}
	}
	sortTuples(out)
	return out, nil
}

// sortTuples orders tuples lexicographically in place.
func sortTuples(ts [][]int) {
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
}

func key4(xs []int) string {
	buf := make([]byte, 4*len(xs))
	for i, v := range xs {
		buf[4*i] = byte(v)
		buf[4*i+1] = byte(v >> 8)
		buf[4*i+2] = byte(v >> 16)
		buf[4*i+3] = byte(v >> 24)
	}
	return string(buf)
}
