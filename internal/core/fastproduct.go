package core

import (
	"context"
	"fmt"
	"math/bits"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/faultinject"
	"ecrpq/internal/govern"
	"ecrpq/internal/graphdb"
	"ecrpq/internal/invariant"
)

// fastProduct is an allocation-light variant of productSearch for the hot
// paths that do not need witness reconstruction (existence checks and the
// Lemma 4.3 R' sweep). Product states are packed into a single uint64:
//
//	[ relation-state combo | vertex per track | done bits ]
//
// It applies when the packing fits in 63 bits; callers fall back to the
// general search otherwise.
type fastProduct struct {
	db    *graphdb.DB
	c     *component
	nfas  []*nfaView
	t     int
	vBits uint
	qBits uint
	radix []int // relation NFA sizes for mixed-radix state packing
	nsym  int
	adj   [][]int32 // adj[v*nsym+sym] = successors of v along sym-edges

	// Precomputed per-relation transition lists plus the stall pseudo-move.
	// Transitions are grouped per source state (from nfaView).

	// Scratch (reused across Run calls). For small packed spaces a bitset
	// replaces the map; it is cleared incrementally via the previous queue.
	visited map[uint64]struct{}
	bitset  []uint64
	queue   []uint64

	// Byte accounting against the context reservation. Scratch is reused
	// across Run calls, so only high-water growth is charged: chargedStates
	// is the largest queue length charged so far, chargedFixed marks the
	// one-time bitset charge. The owner releases via releaseMem.
	mem           *govern.Meter
	chargedStates int
	chargedFixed  bool
	// adjBytes is the retained size of the adjacency table, charged with
	// the other fixed costs on first Run.
	adjBytes int64
}

// fastStateBytes estimates the incremental cost of one product state: a
// queue slot plus, when the visited set is a map, its entry (the bitset is
// charged once up front instead).
const (
	fastStateBitsetBytes = 8
	fastStateMapBytes    = 56
)

// releaseMem closes the accounting scope: everything this fastProduct
// charged is released back to the reservation. Safe on nil receivers and
// without an attached meter; the scratch itself stays reusable.
func (f *fastProduct) releaseMem() {
	if f == nil {
		return
	}
	f.mem.Close()
	f.mem = nil
	f.chargedStates = 0
	f.chargedFixed = false
}

// bitsetMaxBits bounds the packed-space size for which a bitset is used
// (2^26 bits = 8 MiB).
const bitsetMaxBits = 26

// newFastProduct returns nil when the state does not pack into 63 bits.
func newFastProduct(db *graphdb.DB, c *component) *fastProduct {
	t := len(c.tracks)
	if t == 0 || t > 16 {
		return nil
	}
	nfas := make([]*nfaView, len(c.rels))
	qCombos := 1
	radix := make([]int, len(c.rels))
	for i, r := range c.rels {
		nfas[i] = newNFAView(r)
		n := r.RawNFA().NumStates()
		if n == 0 {
			n = 1
		}
		radix[i] = n
		if qCombos > (1<<30)/n {
			return nil
		}
		qCombos *= n
	}
	vBits := uint(bits.Len(uint(maxInt(db.NumVertices()-1, 1))))
	qBits := uint(bits.Len(uint(qCombos - 1)))
	if qBits == 0 {
		qBits = 1
	}
	total := qBits + uint(t)*vBits + uint(t)
	if total > 63 {
		return nil
	}
	nsym := db.Alphabet().Size()
	adj := buildAdjacency(db, nsym)
	adjBytes := int64(24 * len(adj)) // slice headers
	for _, succs := range adj {
		adjBytes += int64(4 * cap(succs))
	}
	f := &fastProduct{
		db: db, c: c, nfas: nfas, t: t,
		vBits: vBits, qBits: qBits, radix: radix,
		nsym: nsym, adj: adj, adjBytes: adjBytes,
	}
	if total <= bitsetMaxBits {
		f.bitset = make([]uint64, (uint64(1)<<total+63)/64)
	} else {
		f.visited = make(map[uint64]struct{})
	}
	return f
}

// buildAdjacency flattens the database's labelled out-edges into the
// vertex-major symbol-indexed table used by expand.
//
//ecrpq:bounds-checked
//ecrpq:charged adjacency bytes (adjBytes) are charged by fastProduct.Run's one-time fixed-cost Grow
func buildAdjacency(db *graphdb.DB, nsym int) [][]int32 {
	adj := make([][]int32, db.NumVertices()*nsym)
	for v := 0; v < db.NumVertices(); v++ {
		for _, e := range db.Out(v) {
			idx := v*nsym + int(e.Label)
			invariant.Assert(idx >= 0 && idx < len(adj), "core: edge label outside the database alphabet")
			adj[idx] = append(adj[idx], int32(e.To))
		}
	}
	return adj
}

// adjAt returns the successors of vertex v along s-labelled edges.
//
//ecrpq:bounds-checked
func (f *fastProduct) adjAt(v int, s alphabet.Symbol) []int32 {
	idx := v*f.nsym + int(s)
	invariant.Assert(idx >= 0 && idx < len(f.adj), "core: adjacency access outside the packed table")
	return f.adj[idx]
}

func (f *fastProduct) pack(relStates []int, verts []int, done uint64) uint64 {
	q := 0
	for i := len(relStates) - 1; i >= 0; i-- {
		q = q*f.radix[i] + relStates[i]
	}
	key := uint64(q)
	shift := f.qBits
	for _, v := range verts {
		key |= uint64(v) << shift
		shift += f.vBits
	}
	key |= done << shift
	return key
}

func (f *fastProduct) unpack(key uint64, relStates []int, verts []int) (done uint64) {
	q := int(key & (1<<f.qBits - 1))
	for i := range relStates {
		relStates[i] = q % f.radix[i]
		q /= f.radix[i]
	}
	shift := f.qBits
	mask := uint64(1)<<f.vBits - 1
	for i := range verts {
		verts[i] = int((key >> shift) & mask)
		shift += f.vBits
	}
	return key >> shift
}

// cancelCheckInterval is how many product states are processed between
// context-cancellation polls. Polling ctx.Err() costs an atomic load, so
// the searches amortize it over a batch of states; the interval bounds
// cancellation latency to the time spent expanding that many states.
const cancelCheckInterval = 1024

// Run explores from the given sources and calls accept on every accepting
// state's vertex tuple; accept returning true stops the search early (and
// Run returns true). maxStates caps exploration (0 = unlimited). The
// search polls ctx every cancelCheckInterval states and returns ctx.Err()
// on cancellation.
func (f *fastProduct) Run(ctx context.Context, srcs []int, accept func(verts []int) bool, maxStates int) (bool, error) {
	if f.mem == nil {
		if r := govern.FromContext(ctx); r != nil {
			f.mem = r.NewMeter()
		}
	}
	perState := int64(fastStateBitsetBytes)
	if f.visited != nil {
		perState = fastStateMapBytes
	}
	if f.mem != nil && !f.chargedFixed {
		f.chargedFixed = true
		if err := f.mem.Grow(int64(len(f.bitset))*8 + f.adjBytes); err != nil {
			return false, fmt.Errorf("core: product search: %w", err)
		}
	}
	if f.bitset != nil {
		// Incremental clear: exactly the previous run's states are set.
		for _, k := range f.queue {
			f.bitset[k>>6] &^= 1 << (k & 63)
		}
	} else {
		clear(f.visited)
	}
	f.queue = f.queue[:0]
	t := f.t
	const unset = alphabet.Unset

	relStates := make([]int, len(f.nfas))
	verts := make([]int, t)
	nextRel := make([]int, len(f.nfas))
	joint := make([]alphabet.Symbol, t)
	newVerts := make([]int, t)

	var push func(key uint64)
	if f.bitset != nil {
		push = func(key uint64) {
			if f.bitset[key>>6]&(1<<(key&63)) == 0 {
				f.bitset[key>>6] |= 1 << (key & 63)
				f.queue = append(f.queue, key)
			}
		}
	} else {
		push = func(key uint64) {
			if _, ok := f.visited[key]; !ok {
				f.visited[key] = struct{}{}
				f.queue = append(f.queue, key)
			}
		}
	}
	// Start states: all combinations of relation start states.
	var buildStarts func(i int)
	buildStarts = func(i int) {
		if i == len(f.nfas) {
			push(f.pack(relStates, srcs, 0))
			return
		}
		for _, q := range f.nfas[i].starts {
			relStates[i] = q
			buildStarts(i + 1)
		}
	}
	buildStarts(0)

	for qi := 0; qi < len(f.queue); qi++ {
		if qi%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			if err := faultinject.Point("core.budget"); err != nil {
				return false, fmt.Errorf("core: product search aborted: %w", err)
			}
			if f.mem != nil && len(f.queue) > f.chargedStates {
				if err := f.mem.Grow(int64(len(f.queue)-f.chargedStates) * perState); err != nil {
					return false, fmt.Errorf("core: product search: %w", err)
				}
				f.chargedStates = len(f.queue)
			}
		}
		key := f.queue[qi]
		done := f.unpack(key, relStates, verts)
		allAcc := true
		for i, v := range f.nfas {
			if !v.accept[relStates[i]] {
				allAcc = false
				break
			}
		}
		if allAcc && accept(verts) {
			return true, nil
		}
		if maxStates > 0 && len(f.queue) > maxStates {
			return false, fmt.Errorf("core: product exceeded the state budget of %d", maxStates)
		}
		for i := range joint {
			joint[i] = unset
		}
		var overRels func(i int)
		overRels = func(i int) {
			if i == len(f.nfas) {
				f.expand(done, verts, joint, nextRel, newVerts, push)
				return
			}
			for _, tr := range f.nfas[i].trans[relStates[i]] {
				ok := true
				var touched [16]int
				nt := 0
				for k, s := range tr.tuple {
					mt := f.c.relTracks[i][k]
					if joint[mt] == unset {
						joint[mt] = s
						touched[nt] = mt
						nt++
					} else if joint[mt] != s {
						ok = false
						break
					}
				}
				if ok {
					nextRel[i] = tr.to
					overRels(i + 1)
				}
				for j := 0; j < nt; j++ {
					joint[touched[j]] = unset
				}
			}
			// Stall: this relation's tracks are all padded from here on.
			ok := true
			var touched [16]int
			nt := 0
			for _, mt := range f.c.relTracks[i] {
				if joint[mt] == unset {
					joint[mt] = alphabet.Pad
					touched[nt] = mt
					nt++
				} else if joint[mt] != alphabet.Pad {
					ok = false
					break
				}
			}
			if ok {
				nextRel[i] = relStates[i]
				overRels(i + 1)
			}
			for j := 0; j < nt; j++ {
				joint[touched[j]] = unset
			}
		}
		overRels(0)
	}
	return false, nil
}

// expand advances database pointers for a fully-determined joint letter.
func (f *fastProduct) expand(done uint64, verts []int, joint []alphabet.Symbol, nextRel, newVerts []int, push func(uint64)) {
	t := f.t
	allPad := true
	for i := 0; i < t; i++ {
		if joint[i] != alphabet.Pad {
			allPad = false
			if done&(1<<uint(i)) != 0 {
				return
			}
		}
	}
	if allPad {
		return
	}
	newDone := done
	for i := 0; i < t; i++ {
		if joint[i] == alphabet.Pad {
			newDone |= 1 << uint(i)
		}
	}
	copy(newVerts, verts)
	var overTracks func(i int)
	overTracks = func(i int) {
		if i == t {
			push(f.pack(nextRel, newVerts, newDone))
			return
		}
		if joint[i] == alphabet.Pad {
			overTracks(i + 1)
			return
		}
		cur := verts[i]
		for _, to := range f.adjAt(cur, joint[i]) {
			newVerts[i] = int(to)
			overTracks(i + 1)
		}
		newVerts[i] = cur
	}
	overTracks(0)
}
