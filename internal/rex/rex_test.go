package rex

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ecrpq/internal/alphabet"
)

func match(t *testing.T, a *alphabet.Alphabet, expr, word string) bool {
	t.Helper()
	n, err := CompileString(a, expr)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	w, err := alphabet.ParseWord(a, word)
	if err != nil {
		t.Fatalf("word %q: %v", word, err)
	}
	return n.Accepts(w)
}

func TestBasicMatching(t *testing.T) {
	a := alphabet.Lower(3)
	cases := []struct {
		expr, word string
		want       bool
	}{
		{"a", "a", true},
		{"a", "b", false},
		{"a", "", false},
		{"ab", "ab", true},
		{"ab", "ba", false},
		{"a|b", "a", true},
		{"a|b", "b", true},
		{"a|b", "c", false},
		{"a*", "", true},
		{"a*", "aaaa", true},
		{"a*", "ab", false},
		{"a*b", "b", true},
		{"a*b", "aab", true},
		{"a*b", "aaba", false},
		{"a+", "", false},
		{"a+", "a", true},
		{"a+", "aaa", true},
		{"a?", "", true},
		{"a?", "a", true},
		{"a?", "aa", false},
		{"(ab)*", "", true},
		{"(ab)*", "abab", true},
		{"(ab)*", "aba", false},
		{"(a|b)*", "abba", true},
		{"(a|b)*c", "abc", true},
		{"(a|b)*c", "abcc", false},
		{".", "a", true},
		{".", "c", true},
		{".", "", false},
		{".*", "abcabc", true},
		{"[ab]", "a", true},
		{"[ab]", "b", true},
		{"[ab]", "c", false},
		{"[ab]*c", "abbac", true},
		{"ε", "", true},
		{"ε", "a", false},
		{"()", "", true},
		{"", "", true},
		{"", "a", false},
		{"a|", "", true},
		{"a|", "a", true},
	}
	for _, c := range cases {
		if got := match(t, a, c.expr, c.word); got != c.want {
			t.Errorf("%q matching %q = %v, want %v", c.expr, c.word, got, c.want)
		}
	}
}

func TestMultiCharSymbols(t *testing.T) {
	a := alphabet.MustNew("load", "store")
	n, err := CompileString(a, "<load>*<store>")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	w := alphabet.MustParseWord(a, "load.load.store")
	if !n.Accepts(w) {
		t.Error("should accept load.load.store")
	}
	w2 := alphabet.MustParseWord(a, "store.load")
	if n.Accepts(w2) {
		t.Error("should reject store.load")
	}
}

func TestEscapes(t *testing.T) {
	a := alphabet.MustNew("*", "a")
	n, err := CompileString(a, `\*a`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if !n.Accepts(alphabet.Word{0, 1}) {
		t.Error("escaped star should match literal symbol")
	}
}

func TestParseErrors(t *testing.T) {
	a := alphabet.Lower(2)
	for _, bad := range []string{
		"(", ")", "a)", "(a", "*", "a|*", "[", "[]", "[z]", "z",
		"<", "<zz>", `\`, `\z`, "a**(", "+",
	} {
		if _, err := Parse(a, bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestNestedQuantifiers(t *testing.T) {
	a := alphabet.Lower(2)
	cases := []struct {
		expr, word string
		want       bool
	}{
		{"(a*)*", "", true},
		{"(a*)*", "aaa", true},
		{"(a+b)+", "ab", true},
		{"(a+b)+", "aabab", true},
		{"(a+b)+", "ba", false},
		{"a?*", "aaa", true},
	}
	for _, c := range cases {
		if got := match(t, a, c.expr, c.word); got != c.want {
			t.Errorf("%q matching %q = %v, want %v", c.expr, c.word, got, c.want)
		}
	}
}

func TestSourceRoundTrip(t *testing.T) {
	a := alphabet.Lower(2)
	e := MustParse(a, "(a|b)*a")
	if e.Source() != "(a|b)*a" {
		t.Errorf("Source = %q", e.Source())
	}
	if !e.Matches(a, alphabet.MustParseWord(a, "ba")) {
		t.Error("Matches failed")
	}
}

func TestUnionPrecedence(t *testing.T) {
	a := alphabet.Lower(3)
	// ab|c means (ab)|c, not a(b|c)
	if !match(t, a, "ab|c", "c") {
		t.Error("ab|c should match c")
	}
	if !match(t, a, "ab|c", "ab") {
		t.Error("ab|c should match ab")
	}
	if match(t, a, "ab|c", "ac") {
		t.Error("ab|c should not match ac")
	}
}

func TestCompiledAutomatonIsClean(t *testing.T) {
	a := alphabet.Lower(2)
	n := MustCompileString(a, "(a|b)*abb")
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Trim guarantees all states useful; a rough sanity bound on size.
	if n.NumStates() > 40 {
		t.Errorf("compiled NFA unexpectedly large: %d states", n.NumStates())
	}
}

// naiveMatch interprets a tiny regex subset (literal symbols, *, |,
// parentheses) by brute-force enumeration, used as an oracle on random small
// expressions.
type gen struct {
	rng   *rand.Rand
	depth int
}

func (g *gen) expr() string {
	g.depth++
	defer func() { g.depth-- }()
	if g.depth > 3 {
		return g.leaf()
	}
	switch g.rng.Intn(5) {
	case 0:
		return g.leaf()
	case 1:
		return g.expr() + g.expr()
	case 2:
		return "(" + g.expr() + "|" + g.expr() + ")"
	case 3:
		return "(" + g.expr() + ")*"
	default:
		return "(" + g.expr() + ")?"
	}
}

func (g *gen) leaf() string {
	return string(rune('a' + g.rng.Intn(2)))
}

// matchOracle does exponential backtracking matching of the generated
// expressions (which use only literals, concat, |, *, ?).
func matchOracle(expr, w string) bool {
	type state struct{ e, pos int }
	// Parse into a tree using a recursive descent identical in shape to the
	// generator output; simpler: reuse the package parser via a 2-symbol
	// alphabet and derivative-free NFA — but that's circular. Instead
	// memoized recursive matcher over the expression string.
	var memo map[[3]int]bool
	var matchRange func(lo, hi, wlo, whi int) bool
	// split alternatives at top level of [lo,hi)
	topSplit := func(lo, hi int, sep byte) []int {
		depth := 0
		var cuts []int
		for i := lo; i < hi; i++ {
			switch expr[i] {
			case '(':
				depth++
			case ')':
				depth--
			case sep:
				if depth == 0 {
					cuts = append(cuts, i)
				}
			}
		}
		return cuts
	}
	// first factor of [lo,hi): returns end index of the factor (including
	// postfix stars and question marks).
	factorEnd := func(lo, hi int) int {
		i := lo
		if expr[i] == '(' {
			depth := 1
			i++
			for depth > 0 {
				if expr[i] == '(' {
					depth++
				} else if expr[i] == ')' {
					depth--
				}
				i++
			}
		} else {
			i++
		}
		for i < hi && (expr[i] == '*' || expr[i] == '?') {
			i++
		}
		return i
	}
	var matchFactor func(lo, hi, wlo, whi int) bool
	matchRange = func(lo, hi, wlo, whi int) bool {
		if lo == hi {
			return wlo == whi
		}
		if cuts := topSplit(lo, hi, '|'); len(cuts) > 0 {
			prev := lo
			for _, c := range append(cuts, hi) {
				if matchRange(prev, c, wlo, whi) {
					return true
				}
				prev = c + 1
			}
			return false
		}
		fe := factorEnd(lo, hi)
		if fe == hi {
			return matchFactor(lo, hi, wlo, whi)
		}
		for cut := wlo; cut <= whi; cut++ {
			if matchFactor(lo, fe, wlo, cut) && matchRange(fe, hi, cut, whi) {
				return true
			}
		}
		return false
	}
	matchFactor = func(lo, hi, wlo, whi int) bool {
		if expr[hi-1] == '*' {
			key := [3]int{lo<<20 | hi, wlo, whi}
			if v, ok := memo[key]; ok {
				return v
			}
			memo[key] = false // guard against ε-cycles
			res := false
			if wlo == whi {
				res = true
			} else {
				for cut := wlo + 1; cut <= whi; cut++ {
					if matchRange(lo, hi-1, wlo, cut) && matchFactor(lo, hi, cut, whi) {
						res = true
						break
					}
				}
				// also the body may match ε then rest must be ε-matched: covered by wlo==whi base
			}
			memo[key] = res
			return res
		}
		if expr[hi-1] == '?' {
			if wlo == whi {
				return true
			}
			return matchFactor(lo, hi-1, wlo, whi)
		}
		if expr[lo] == '(' {
			return matchRange(lo+1, hi-1, wlo, whi)
		}
		return hi-lo == 1 && whi-wlo == 1 && w[wlo] == expr[lo]
	}
	memo = make(map[[3]int]bool)
	return matchRange(0, len(expr), 0, len(w))
}

func TestCompileAgainstOracleProperty(t *testing.T) {
	a := alphabet.Lower(2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := &gen{rng: rng}
		exprSrc := g.expr()
		n, err := CompileString(a, exprSrc)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			wl := rng.Intn(6)
			var sb strings.Builder
			for j := 0; j < wl; j++ {
				sb.WriteByte(byte('a' + rng.Intn(2)))
			}
			ws := sb.String()
			w := alphabet.MustParseWord(a, ws)
			if n.Accepts(w) != matchOracle(exprSrc, ws) {
				t.Logf("mismatch: expr=%q word=%q nfa=%v", exprSrc, ws, n.Accepts(w))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
