package rex

import (
	"fmt"
	"strings"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
)

// FromNFA converts an automaton back to a regular expression by state
// elimination (the inverse of Compile, up to language equivalence). The
// result can be exponentially larger than the automaton; intended for small
// automata (debugging, serialization, teaching).
func FromNFA(a *alphabet.Alphabet, nfa *automata.NFA[alphabet.Symbol]) (string, error) {
	clean := nfa.RemoveEps().Trim()
	n := clean.NumStates()
	if n == 0 {
		// Empty language: no regex denotes ∅ in our syntax; report it.
		return "", fmt.Errorf("rex: the empty language has no expression in this syntax")
	}
	// Generalized NFA over n+2 states: 0 = super-start, n+1 = super-accept,
	// internals shifted by 1. labels[p][q] holds a regex string or "" (no
	// edge). We use "ε" for the empty word.
	size := n + 2
	labels := make([][]string, size)
	for i := range labels {
		labels[i] = make([]string, size)
	}
	union := func(old, add string) string {
		if old == "" {
			return add
		}
		if old == add {
			return old
		}
		return old + "|" + add
	}
	for _, s := range clean.StartStates() {
		labels[0][s+1] = union(labels[0][s+1], "ε")
	}
	for _, f := range clean.AcceptStates() {
		labels[f+1][n+1] = union(labels[f+1][n+1], "ε")
	}
	clean.Transitions(func(p int, sym alphabet.Symbol, q int) {
		labels[p+1][q+1] = union(labels[p+1][q+1], symbolExpr(a, sym))
	})

	group := func(e string) string {
		if e == "" || e == "ε" {
			return e
		}
		if len([]rune(e)) == 1 {
			return e
		}
		return "(" + e + ")"
	}
	concat := func(x, y string) string {
		switch {
		case x == "" || y == "":
			return ""
		case x == "ε":
			return y
		case y == "ε":
			return x
		}
		return group(x) + group(y)
	}
	star := func(x string) string {
		if x == "" || x == "ε" {
			return "ε"
		}
		return group(x) + "*"
	}

	// Eliminate internal states 1..n.
	alive := make([]bool, size)
	for i := 1; i <= n; i++ {
		alive[i] = true
	}
	for x := 1; x <= n; x++ {
		alive[x] = false
		loop := star(labels[x][x])
		for p := 0; p < size; p++ {
			if (p != 0 && p != n+1 && !alive[p]) || labels[p][x] == "" {
				continue
			}
			for q := 0; q < size; q++ {
				if (q != 0 && q != n+1 && !alive[q]) || labels[x][q] == "" {
					continue
				}
				via := concat(concat(labels[p][x], loop), labels[x][q])
				if via != "" {
					labels[p][q] = union(labels[p][q], via)
				}
			}
		}
	}
	result := labels[0][n+1]
	if result == "" {
		return "", fmt.Errorf("rex: the empty language has no expression in this syntax")
	}
	return result, nil
}

// symbolExpr renders a symbol as regex source: single-rune names directly
// (escaped if they are metacharacters), multi-rune names in angle brackets.
func symbolExpr(a *alphabet.Alphabet, s alphabet.Symbol) string {
	name := a.Name(s)
	if len([]rune(name)) == 1 {
		if strings.ContainsAny(name, `()[]|*+?.\<>`) || name == "ε" {
			return `\` + name
		}
		return name
	}
	return "<" + name + ">"
}
