// Package rex implements regular expressions over a named alphabet and
// their compilation to NFAs (Thompson's construction).
//
// Syntax (standard, over the symbols of an alphabet.Alphabet):
//
//	union        e1|e2
//	concat       e1e2
//	closure      e*   e+   e?
//	grouping     (e)
//	any symbol   .
//	symbol class [abc]          (single-character symbol names only)
//	empty word   ε  or  ()
//	multi-char   <name>         (for symbols whose name is longer than 1 rune)
//	escape       \* \| \( ...   (literal metacharacter as a symbol name)
//
// The paper writes union as "+" (e.g. (a+b)*); this package accepts "|",
// which is unambiguous with the postfix Kleene plus.
package rex

import (
	"fmt"
	"strings"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
	"ecrpq/internal/invariant"
)

// Expr is a parsed regular expression.
type Expr struct {
	root node
	src  string
}

// node is a regex AST node.
type node interface {
	fmt.Stringer
	compile(c *compiler) frag
}

type (
	emptyNode  struct{}                    // ε
	symbolNode struct{ s alphabet.Symbol } // a single symbol
	anyNode    struct{}                    // . — any symbol of the alphabet
	classNode  struct{ set []alphabet.Symbol }
	concatNode struct{ parts []node }
	unionNode  struct{ parts []node }
	starNode   struct{ sub node }
	plusNode   struct{ sub node }
	optNode    struct{ sub node }
)

func (emptyNode) String() string    { return "ε" }
func (n symbolNode) String() string { return fmt.Sprintf("sym(%d)", n.s) }
func (anyNode) String() string      { return "." }
func (n classNode) String() string {
	return fmt.Sprintf("class(%v)", n.set)
}
func (n concatNode) String() string {
	parts := make([]string, len(n.parts))
	for i, p := range n.parts {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, "·") + ")"
}
func (n unionNode) String() string {
	parts := make([]string, len(n.parts))
	for i, p := range n.parts {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, "|") + ")"
}
func (n starNode) String() string { return n.sub.String() + "*" }
func (n plusNode) String() string { return n.sub.String() + "+" }
func (n optNode) String() string  { return n.sub.String() + "?" }

// Source returns the original text of the expression.
func (e *Expr) Source() string { return e.src }

// Parse parses a regular expression over the given alphabet.
func Parse(a *alphabet.Alphabet, src string) (*Expr, error) {
	p := &parser{alpha: a, src: []rune(src)}
	n, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("rex: unexpected %q at position %d in %q", string(p.src[p.pos]), p.pos, src)
	}
	return &Expr{root: n, src: src}, nil
}

// MustParse is Parse, panicking on error.
func MustParse(a *alphabet.Alphabet, src string) *Expr {
	return invariant.Must(Parse(a, src))
}

type parser struct {
	alpha *alphabet.Alphabet
	src   []rune
	pos   int
}

func (p *parser) peek() (rune, bool) {
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

func (p *parser) parseUnion() (node, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	parts := []node{first}
	for {
		r, ok := p.peek()
		if !ok || r != '|' {
			break
		}
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return unionNode{parts}, nil
}

func (p *parser) parseConcat() (node, error) {
	var parts []node
	for {
		r, ok := p.peek()
		if !ok || r == '|' || r == ')' {
			break
		}
		f, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		parts = append(parts, f)
	}
	switch len(parts) {
	case 0:
		return emptyNode{}, nil
	case 1:
		return parts[0], nil
	}
	return concatNode{parts}, nil
}

func (p *parser) parsePostfix() (node, error) {
	n, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		r, ok := p.peek()
		if !ok {
			break
		}
		switch r {
		case '*':
			p.pos++
			n = starNode{n}
		case '+':
			p.pos++
			n = plusNode{n}
		case '?':
			p.pos++
			n = optNode{n}
		default:
			return n, nil
		}
	}
	return n, nil
}

func (p *parser) parseAtom() (node, error) {
	r, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("rex: unexpected end of expression")
	}
	switch r {
	case '(':
		p.pos++
		inner, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		r2, ok := p.peek()
		if !ok || r2 != ')' {
			return nil, fmt.Errorf("rex: missing ')' at position %d", p.pos)
		}
		p.pos++
		return inner, nil
	case '.':
		p.pos++
		return anyNode{}, nil
	case 'ε':
		p.pos++
		return emptyNode{}, nil
	case '[':
		p.pos++
		var set []alphabet.Symbol
		for {
			r2, ok := p.peek()
			if !ok {
				return nil, fmt.Errorf("rex: missing ']'")
			}
			if r2 == ']' {
				p.pos++
				break
			}
			p.pos++
			s, found := p.alpha.Lookup(string(r2))
			if !found {
				return nil, fmt.Errorf("rex: unknown symbol %q in class", string(r2))
			}
			set = append(set, s)
		}
		if len(set) == 0 {
			return nil, fmt.Errorf("rex: empty symbol class")
		}
		return classNode{set}, nil
	case '<':
		p.pos++
		start := p.pos
		for {
			r2, ok := p.peek()
			if !ok {
				return nil, fmt.Errorf("rex: missing '>'")
			}
			if r2 == '>' {
				break
			}
			p.pos++
		}
		name := string(p.src[start:p.pos])
		p.pos++ // consume '>'
		s, found := p.alpha.Lookup(name)
		if !found {
			return nil, fmt.Errorf("rex: unknown symbol <%s>", name)
		}
		return symbolNode{s}, nil
	case '\\':
		p.pos++
		r2, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("rex: dangling escape")
		}
		p.pos++
		s, found := p.alpha.Lookup(string(r2))
		if !found {
			return nil, fmt.Errorf("rex: unknown escaped symbol %q", string(r2))
		}
		return symbolNode{s}, nil
	case ')', '|', '*', '+', '?', ']', '>':
		return nil, fmt.Errorf("rex: unexpected %q at position %d", string(r), p.pos)
	default:
		p.pos++
		s, found := p.alpha.Lookup(string(r))
		if !found {
			return nil, fmt.Errorf("rex: unknown symbol %q at position %d", string(r), p.pos-1)
		}
		return symbolNode{s}, nil
	}
}

// frag is a Thompson fragment: one entry state, one exit state.
type frag struct{ in, out int }

type compiler struct {
	nfa   *automata.NFA[alphabet.Symbol]
	alpha *alphabet.Alphabet
}

func (c *compiler) newFrag() frag {
	return frag{in: c.nfa.AddState(), out: c.nfa.AddState()}
}

func (n emptyNode) compile(c *compiler) frag {
	f := c.newFrag()
	c.nfa.AddEps(f.in, f.out)
	return f
}

func (n symbolNode) compile(c *compiler) frag {
	f := c.newFrag()
	c.nfa.AddTransition(f.in, n.s, f.out)
	return f
}

func (n anyNode) compile(c *compiler) frag {
	f := c.newFrag()
	for _, s := range c.alpha.Symbols() {
		c.nfa.AddTransition(f.in, s, f.out)
	}
	return f
}

func (n classNode) compile(c *compiler) frag {
	f := c.newFrag()
	for _, s := range n.set {
		c.nfa.AddTransition(f.in, s, f.out)
	}
	return f
}

func (n concatNode) compile(c *compiler) frag {
	cur := n.parts[0].compile(c)
	for _, p := range n.parts[1:] {
		next := p.compile(c)
		c.nfa.AddEps(cur.out, next.in)
		cur = frag{in: cur.in, out: next.out}
	}
	return cur
}

func (n unionNode) compile(c *compiler) frag {
	f := c.newFrag()
	for _, p := range n.parts {
		sub := p.compile(c)
		c.nfa.AddEps(f.in, sub.in)
		c.nfa.AddEps(sub.out, f.out)
	}
	return f
}

func (n starNode) compile(c *compiler) frag {
	f := c.newFrag()
	sub := n.sub.compile(c)
	c.nfa.AddEps(f.in, f.out)
	c.nfa.AddEps(f.in, sub.in)
	c.nfa.AddEps(sub.out, sub.in)
	c.nfa.AddEps(sub.out, f.out)
	return f
}

func (n plusNode) compile(c *compiler) frag {
	f := c.newFrag()
	sub := n.sub.compile(c)
	c.nfa.AddEps(f.in, sub.in)
	c.nfa.AddEps(sub.out, sub.in)
	c.nfa.AddEps(sub.out, f.out)
	return f
}

func (n optNode) compile(c *compiler) frag {
	f := c.newFrag()
	sub := n.sub.compile(c)
	c.nfa.AddEps(f.in, f.out)
	c.nfa.AddEps(f.in, sub.in)
	c.nfa.AddEps(sub.out, f.out)
	return f
}

// Compile compiles the expression to an ε-free, trimmed NFA over the
// alphabet's symbols.
func (e *Expr) Compile(a *alphabet.Alphabet) *automata.NFA[alphabet.Symbol] {
	c := &compiler{nfa: automata.NewNFA[alphabet.Symbol](0), alpha: a}
	f := e.root.compile(c)
	c.nfa.SetStart(f.in, true)
	c.nfa.SetAccept(f.out, true)
	return c.nfa.RemoveEps().Trim()
}

// CompileString parses and compiles in one step.
func CompileString(a *alphabet.Alphabet, src string) (*automata.NFA[alphabet.Symbol], error) {
	e, err := Parse(a, src)
	if err != nil {
		return nil, err
	}
	return e.Compile(a), nil
}

// MustCompileString is CompileString, panicking on error.
func MustCompileString(a *alphabet.Alphabet, src string) *automata.NFA[alphabet.Symbol] {
	return invariant.Must(CompileString(a, src))
}

// Matches reports whether the word matches the expression (convenience
// wrapper that compiles on each call; compile once for hot paths).
func (e *Expr) Matches(a *alphabet.Alphabet, w alphabet.Word) bool {
	return e.Compile(a).Accepts(w)
}
