package rex

import (
	"testing"

	"ecrpq/internal/alphabet"
)

// FuzzParseCompile: arbitrary expressions must never panic; successfully
// compiled automata must validate and behave consistently on a few words.
func FuzzParseCompile(f *testing.F) {
	for _, s := range []string{
		"a*b", "(a|b)+", "[ab]?c", "", "ε", "((a))", "a|b|c",
		"<x>", "\\*", ".*.", "a**", "((((((a))))))",
	} {
		f.Add(s)
	}
	a := alphabet.Lower(3)
	words := []alphabet.Word{{}, {0}, {0, 1}, {2, 2, 2}, {0, 1, 2, 0}}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 100 {
			return // cap compile sizes
		}
		nfa, err := CompileString(a, src)
		if err != nil {
			return
		}
		if err := nfa.Validate(); err != nil {
			t.Fatalf("compiled NFA invalid: %v (source %q)", err, src)
		}
		// Determinization must agree with the NFA.
		d := nfa.Determinize()
		for _, w := range words {
			ws := make([]alphabet.Symbol, len(w))
			copy(ws, w)
			if nfa.Accepts(ws) != d.Accepts(ws) {
				t.Fatalf("NFA/DFA disagree on %v for %q", w, src)
			}
		}
	})
}
