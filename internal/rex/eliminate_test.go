package rex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
)

func TestFromNFASimple(t *testing.T) {
	a := alphabet.Lower(2)
	cases := []string{"a", "ab", "a*b", "(a|b)*", "a+", "a?b", "ε", "(ab|ba)*a?"}
	for _, src := range cases {
		nfa := MustCompileString(a, src)
		back, err := FromNFA(a, nfa)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		nfa2, err := CompileString(a, back)
		if err != nil {
			t.Fatalf("%q → %q: recompile: %v", src, back, err)
		}
		if !automata.Equivalent(nfa, nfa2) {
			t.Errorf("%q → %q: languages differ", src, back)
		}
	}
}

func TestFromNFAEmptyLanguage(t *testing.T) {
	a := alphabet.Lower(2)
	empty := automata.NewNFA[alphabet.Symbol](1)
	empty.SetStart(0, true) // no accepting state
	if _, err := FromNFA(a, empty); err == nil {
		t.Error("empty language should be reported as inexpressible")
	}
}

func TestFromNFAMultiCharSymbols(t *testing.T) {
	a := alphabet.MustNew("load", "store")
	nfa := MustCompileString(a, "<load>*<store>")
	back, err := FromNFA(a, nfa)
	if err != nil {
		t.Fatal(err)
	}
	nfa2, err := CompileString(a, back)
	if err != nil {
		t.Fatalf("recompile %q: %v", back, err)
	}
	if !automata.Equivalent(nfa, nfa2) {
		t.Errorf("round trip through %q changed the language", back)
	}
}

func TestFromNFAMetacharacterSymbols(t *testing.T) {
	a := alphabet.MustNew("*", "(")
	nfa := automata.NewNFA[alphabet.Symbol](2)
	nfa.SetStart(0, true)
	nfa.SetAccept(1, true)
	nfa.AddTransition(0, 0, 1)
	nfa.AddTransition(1, 1, 1)
	back, err := FromNFA(a, nfa)
	if err != nil {
		t.Fatal(err)
	}
	nfa2, err := CompileString(a, back)
	if err != nil {
		t.Fatalf("recompile %q: %v", back, err)
	}
	if !automata.Equivalent(nfa, nfa2) {
		t.Errorf("metacharacter round trip through %q changed the language", back)
	}
}

func TestFromNFARoundTripProperty(t *testing.T) {
	a := alphabet.Lower(2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := &gen{rng: rng}
		src := g.expr()
		nfa, err := CompileString(a, src)
		if err != nil {
			return false
		}
		back, err := FromNFA(a, nfa)
		if err != nil {
			// Only the empty language is inexpressible.
			_, empty := nfa.IsEmpty()
			return empty
		}
		if len(back) > 100_000 {
			return true // state elimination blowup: skip equivalence check
		}
		nfa2, err := CompileString(a, back)
		if err != nil {
			t.Logf("seed %d: %q → %q failed to recompile: %v", seed, src, back, err)
			return false
		}
		if !automata.Equivalent(nfa, nfa2) {
			t.Logf("seed %d: %q → %q not equivalent", seed, src, back)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
