package synchro

import (
	"testing"

	"ecrpq/internal/alphabet"
)

func TestFormatParseRoundTrip(t *testing.T) {
	a := alphabet.Lower(2)
	rels := []*Relation{
		Equality(a, 2).WithName("eq2"),
		EqualLength(a, 3).WithName("el3"),
		PrefixOf(a),
		HammingAtMost(a, 1),
		insertion(a),
	}
	words := allWords(a, 3)
	for _, r := range rels {
		text := r.FormatString()
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", r.Name(), err, text)
		}
		if back.Arity() != r.Arity() {
			t.Fatalf("%s: arity %d vs %d", r.Name(), back.Arity(), r.Arity())
		}
		// Semantic equality on bounded words.
		check := func(ws ...alphabet.Word) {
			got := back.MustContain(ws...)
			want := r.MustContain(ws...)
			if got != want {
				t.Fatalf("%s: round trip differs on %v: %v vs %v", r.Name(), ws, got, want)
			}
		}
		if r.Arity() == 2 {
			for _, u := range words {
				for _, v := range words {
					check(u, v)
				}
			}
		} else {
			for _, u := range words[:6] {
				for _, v := range words[:6] {
					for _, w := range words[:6] {
						check(u, v, w)
					}
				}
			}
		}
	}
}

func TestFormatParseUniversal(t *testing.T) {
	a := alphabet.Lower(2)
	u := Universal(a, 3).WithName("top")
	back, err := ParseString(u.FormatString())
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsUniversal() || back.Arity() != 3 || back.Name() != "top" {
		t.Errorf("universal round trip: %v", back)
	}
}

func TestParseRelationErrors(t *testing.T) {
	bad := []string{
		"",                                       // no header
		"arity 2",                                // no alphabet
		"alphabet a",                             // no arity
		"arity 0\nalphabet a",                    // bad arity
		"arity 2\nalphabet a\nstart 0",           // start before states
		"arity 2\nalphabet a\nstates -1",         // bad state count
		"arity 2\nalphabet a\nstates 2\nstart 5", // state out of range
		"arity 2\nalphabet a\nstates 2\n0 (a,a) 9",     // transition out of range
		"arity 2\nalphabet a\nstates 2\n0 (a) 1",       // wrong letter arity
		"arity 2\nalphabet a\nstates 2\n0 (a,z) 1",     // unknown symbol
		"arity 2\nalphabet a\nstates 2\n0 a,a 1",       // missing parens
		"arity 2\nalphabet a\nstates 2\n0 (⊥,⊥) 1",     // all-pad letter
		"arity 2\nalphabet a",                          // no states, not universal
		"relation x y\narity 2\nalphabet a\nuniversal", // bad relation line
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) should fail", s)
		}
	}
}

func TestParseAcceptsUnderscorePad(t *testing.T) {
	src := `relation pre
arity 2
alphabet a b
states 2
start 0
accept 0 1
0 (a,a) 0
0 (_,a) 1
1 (_,a) 1
`
	r, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	a := r.Alphabet()
	u := alphabet.MustParseWord(a, "a")
	v := alphabet.MustParseWord(a, "aa")
	if !r.MustContain(u, v) {
		t.Error("parsed relation should contain (a, aa)")
	}
}
