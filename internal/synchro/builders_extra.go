package synchro

import (
	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
)

// ShorterThan returns the binary relation {(u, v) : |u| < |v|}.
func ShorterThan(a *alphabet.Alphabet) *Relation {
	// State 0: both running; state 1: u has ended and v read ≥ 1 more.
	nfa := automata.NewNFA[string](2)
	nfa.SetStart(0, true)
	nfa.SetAccept(1, true)
	for _, s1 := range a.Symbols() {
		for _, s2 := range a.Symbols() {
			nfa.AddTransition(0, alphabet.Tuple{s1, s2}.Key(), 0)
		}
	}
	for _, s := range a.Symbols() {
		nfa.AddTransition(0, alphabet.Tuple{alphabet.Pad, s}.Key(), 1)
		nfa.AddTransition(1, alphabet.Tuple{alphabet.Pad, s}.Key(), 1)
	}
	return &Relation{arity: 2, alpha: a, nfa: nfa, name: "shorter"}
}

// LexLeq returns the binary relation {(u, v) : u ≤ v in length-lexicographic
// ... no: in plain lexicographic order induced by the alphabet's symbol
// order, where a proper prefix precedes its extensions}.
func LexLeq(a *alphabet.Alphabet) *Relation {
	// State 0: equal so far. From 0:
	//   (s, s)       → 0   (still equal)
	//   (s1, s2)     → 1   if s1 < s2 (decided: u < v; rest arbitrary)
	//   (⊥, s)       → 1   (u is a proper prefix of v)
	// State 1: decided, both tracks free (any symbols or pads, monotone pads
	// are enforced by the evaluator).
	nfa := automata.NewNFA[string](2)
	nfa.SetStart(0, true)
	nfa.SetAccept(0, true) // u == v
	nfa.SetAccept(1, true)
	for _, s := range a.Symbols() {
		nfa.AddTransition(0, alphabet.Tuple{s, s}.Key(), 0)
		nfa.AddTransition(0, alphabet.Tuple{alphabet.Pad, s}.Key(), 1)
	}
	for _, s1 := range a.Symbols() {
		for _, s2 := range a.Symbols() {
			if s1 < s2 {
				nfa.AddTransition(0, alphabet.Tuple{s1, s2}.Key(), 1)
			}
			nfa.AddTransition(1, alphabet.Tuple{s1, s2}.Key(), 1)
		}
	}
	for _, s := range a.Symbols() {
		nfa.AddTransition(1, alphabet.Tuple{s, alphabet.Pad}.Key(), 1)
		nfa.AddTransition(1, alphabet.Tuple{alphabet.Pad, s}.Key(), 1)
	}
	return &Relation{arity: 2, alpha: a, nfa: nfa, name: "lex<="}
}

// CommonPrefixAtLeast returns the binary relation of word pairs sharing a
// common prefix of length at least k (both words must have length ≥ k).
func CommonPrefixAtLeast(a *alphabet.Alphabet, k int) *Relation {
	// States 0..k count matched prefix positions; state k is accepting and
	// free.
	nfa := automata.NewNFA[string](k + 1)
	nfa.SetStart(0, true)
	nfa.SetAccept(k, true)
	for i := 0; i < k; i++ {
		for _, s := range a.Symbols() {
			nfa.AddTransition(i, alphabet.Tuple{s, s}.Key(), i+1)
		}
	}
	for _, s1 := range a.Symbols() {
		for _, s2 := range a.Symbols() {
			nfa.AddTransition(k, alphabet.Tuple{s1, s2}.Key(), k)
		}
		nfa.AddTransition(k, alphabet.Tuple{s1, alphabet.Pad}.Key(), k)
		nfa.AddTransition(k, alphabet.Tuple{alphabet.Pad, s1}.Key(), k)
	}
	if k == 0 {
		// Every pair qualifies, including empty words.
		nfa.SetAccept(0, true)
	}
	return &Relation{arity: 2, alpha: a, nfa: nfa, name: "common-prefix>=k"}
}

// SameLastSymbol returns the binary relation of non-empty word pairs ending
// with the same symbol.
func SameLastSymbol(a *alphabet.Alphabet) *Relation {
	// Nondeterministically guess the final positions: track states
	// (lastU, lastV) candidates. Simpler synchronous construction: states
	// remember nothing until the ends; guess which letter is each track's
	// last. States: 0 = running; perSym(s) = u ended with s, v still
	// running and must also end with s; symmetric states for v ended first;
	// done = both ended with the same symbol.
	n := a.Size()
	nfa := automata.NewNFA[string](2*n + 2)
	running := 0
	uEnded := func(s alphabet.Symbol) int { return 1 + int(s) }
	vEnded := func(s alphabet.Symbol) int { return 1 + n + int(s) }
	done := 2*n + 1
	nfa.SetStart(running, true)
	nfa.SetAccept(done, true)
	for _, s1 := range a.Symbols() {
		for _, s2 := range a.Symbols() {
			nfa.AddTransition(running, alphabet.Tuple{s1, s2}.Key(), running)
			// Both end now with the same symbol.
			if s1 == s2 {
				nfa.AddTransition(running, alphabet.Tuple{s1, s2}.Key(), done)
			}
		}
	}
	for _, s := range a.Symbols() {
		// u reads its last symbol s while v continues.
		for _, s2 := range a.Symbols() {
			nfa.AddTransition(running, alphabet.Tuple{s, s2}.Key(), uEnded(s))
			nfa.AddTransition(running, alphabet.Tuple{s2, s}.Key(), vEnded(s))
		}
		// While waiting, the other track keeps reading (non-final symbols).
		for _, s2 := range a.Symbols() {
			nfa.AddTransition(uEnded(s), alphabet.Tuple{alphabet.Pad, s2}.Key(), uEnded(s))
			nfa.AddTransition(vEnded(s), alphabet.Tuple{s2, alphabet.Pad}.Key(), vEnded(s))
		}
		// The other track reads its final symbol, which must match.
		nfa.AddTransition(uEnded(s), alphabet.Tuple{alphabet.Pad, s}.Key(), done)
		nfa.AddTransition(vEnded(s), alphabet.Tuple{s, alphabet.Pad}.Key(), done)
	}
	return &Relation{arity: 2, alpha: a, nfa: nfa, name: "same-last"}
}
