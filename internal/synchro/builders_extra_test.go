package synchro

import (
	"testing"

	"ecrpq/internal/alphabet"
)

func TestShorterThan(t *testing.T) {
	a := alphabet.Lower(2)
	r := ShorterThan(a)
	words := allWords(a, 3)
	for _, u := range words {
		for _, v := range words {
			want := len(u) < len(v)
			if got := r.MustContain(u, v); got != want {
				t.Errorf("shorter(%v, %v) = %v, want %v", u.Format(a), v.Format(a), got, want)
			}
		}
	}
}

func lexLess(u, v alphabet.Word) bool {
	n := len(u)
	if len(v) < n {
		n = len(v)
	}
	for i := 0; i < n; i++ {
		if u[i] != v[i] {
			return u[i] < v[i]
		}
	}
	return len(u) <= len(v)
}

func TestLexLeq(t *testing.T) {
	a := alphabet.Lower(2)
	r := LexLeq(a)
	words := allWords(a, 3)
	for _, u := range words {
		for _, v := range words {
			want := lexLess(u, v)
			if got := r.MustContain(u, v); got != want {
				t.Errorf("lex<=(%v, %v) = %v, want %v", u.Format(a), v.Format(a), got, want)
			}
		}
	}
}

func TestLexLeqIsTotalOrderProperty(t *testing.T) {
	a := alphabet.Lower(2)
	r := LexLeq(a)
	words := allWords(a, 3)
	for _, u := range words {
		if !r.MustContain(u, u) {
			t.Fatalf("not reflexive at %v", u)
		}
		for _, v := range words {
			le1 := r.MustContain(u, v)
			le2 := r.MustContain(v, u)
			if !le1 && !le2 {
				t.Fatalf("not total at (%v, %v)", u, v)
			}
			if le1 && le2 && !u.Equal(v) {
				t.Fatalf("not antisymmetric at (%v, %v)", u, v)
			}
		}
	}
}

func TestCommonPrefixAtLeast(t *testing.T) {
	a := alphabet.Lower(2)
	words := allWords(a, 4)
	for _, k := range []int{0, 1, 2, 3} {
		r := CommonPrefixAtLeast(a, k)
		for _, u := range words {
			for _, v := range words {
				want := len(u) >= k && len(v) >= k
				for i := 0; i < k && want; i++ {
					if u[i] != v[i] {
						want = false
					}
				}
				if got := r.MustContain(u, v); got != want {
					t.Errorf("commonprefix>=%d(%v, %v) = %v, want %v",
						k, u.Format(a), v.Format(a), got, want)
				}
			}
		}
	}
}

func TestSameLastSymbol(t *testing.T) {
	a := alphabet.Lower(2)
	r := SameLastSymbol(a)
	words := allWords(a, 3)
	for _, u := range words {
		for _, v := range words {
			want := len(u) > 0 && len(v) > 0 && u[len(u)-1] == v[len(v)-1]
			if got := r.MustContain(u, v); got != want {
				t.Errorf("samelast(%v, %v) = %v, want %v",
					u.Format(a), v.Format(a), got, want)
			}
		}
	}
}
