package synchro

import (
	"fmt"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
	"ecrpq/internal/invariant"
)

// Intersect returns R ∩ S (same arity required).
func (r *Relation) Intersect(s *Relation) (*Relation, error) {
	if r.arity != s.arity {
		return nil, fmt.Errorf("synchro: intersect arities %d and %d", r.arity, s.arity)
	}
	if r.universal {
		return s, nil
	}
	if s.universal {
		return r, nil
	}
	return &Relation{arity: r.arity, alpha: r.alpha, nfa: r.nfa.Intersect(s.nfa).Trim()}, nil
}

// Union returns R ∪ S (same arity required).
func (r *Relation) Union(s *Relation) (*Relation, error) {
	if r.arity != s.arity {
		return nil, fmt.Errorf("synchro: union arities %d and %d", r.arity, s.arity)
	}
	if r.universal {
		return r, nil
	}
	if s.universal {
		return s, nil
	}
	return &Relation{arity: r.arity, alpha: r.alpha, nfa: r.nfa.Union(s.nfa)}, nil
}

// Complement returns (A*)^k \ R. The result accepts exactly the valid
// convolutions of tuples outside R. The construction determinizes over the
// full tuple alphabet, so it is exponential in arity; a guard rejects
// relations whose materialized alphabet would exceed an internal bound.
func (r *Relation) Complement() (*Relation, error) {
	m, err := r.materialized()
	if err != nil {
		return nil, err
	}
	if r.universal {
		// Complement of universal is empty.
		nfa := automata.NewNFA[string](1)
		nfa.SetStart(0, true)
		return &Relation{arity: r.arity, alpha: r.alpha, nfa: nfa}, nil
	}
	letters := make([]string, 0)
	for _, t := range alphabet.AllTuples(r.alpha, r.arity) {
		letters = append(letters, t.Key())
	}
	if len(letters) > maxMaterializeLetters {
		return nil, fmt.Errorf("synchro: complement of arity-%d relation over %d symbols too large", r.arity, r.alpha.Size())
	}
	comp := m.nfa.Determinize().Complement(letters).ToNFA()
	// Restrict to valid convolutions.
	valid, err := validConvolutionsNFA(r.alpha, r.arity)
	if err != nil {
		return nil, err
	}
	return &Relation{arity: r.arity, alpha: r.alpha, nfa: comp.Intersect(valid).Trim()}, nil
}

// validConvolutionsNFA recognizes exactly the valid convolutions of k-tuples
// of words: per-track padding is suffix-only and no letter is all-pad.
// States are subsets of finished tracks, so the automaton has 2^k states.
func validConvolutionsNFA(a *alphabet.Alphabet, k int) (*automata.NFA[string], error) {
	if k > 16 {
		return nil, fmt.Errorf("synchro: valid-convolution automaton for arity %d too large", k)
	}
	n := automata.NewNFA[string](1 << k)
	n.SetStart(0, true)
	for mask := 0; mask < 1<<k; mask++ {
		n.SetAccept(mask, true)
	}
	for mask := 0; mask < 1<<k; mask++ {
		for _, t := range alphabet.AllTuples(a, k) {
			next := mask
			ok := true
			for track, s := range t {
				if s == alphabet.Pad {
					next |= 1 << track
				} else if mask&(1<<track) != 0 {
					ok = false
					break
				}
			}
			if ok {
				n.AddTransition(mask, t.Key(), next)
			}
		}
	}
	return n, nil
}

// Permute returns the relation { (w_{perm[0]}, ..., w_{perm[k-1]}) :
// (w_0,...,w_{k-1}) ∈ R }; that is, track i of the result carries what track
// perm[i] of R carried. perm must be a permutation of 0..k-1.
func (r *Relation) Permute(perm []int) *Relation {
	invariant.Assertf(len(perm) == r.arity,
		"synchro: permutation of length %d for arity %d", len(perm), r.arity)
	seen := make([]bool, r.arity)
	for _, p := range perm {
		invariant.Assertf(p >= 0 && p < r.arity && !seen[p], "synchro: invalid permutation %v", perm)
		seen[p] = true
	}
	if r.universal {
		return r
	}
	out := automata.NewNFA[string](r.nfa.NumStates())
	for _, q := range r.nfa.StartStates() {
		out.SetStart(q, true)
	}
	for _, q := range r.nfa.AcceptStates() {
		out.SetAccept(q, true)
	}
	for q := 0; q < r.nfa.NumStates(); q++ {
		tupleTransitions(r.nfa, q, func(t alphabet.Tuple, to int) {
			nt := make(alphabet.Tuple, len(t))
			for i := range nt {
				nt[i] = t[perm[i]]
			}
			out.AddTransition(q, nt.Key(), to)
		})
	}
	return &Relation{arity: r.arity, alpha: r.alpha, nfa: out, name: r.name}
}

// Project returns the relation over the kept tracks:
// { (w_{keep[0]},...,w_{keep[m-1]}) : ∃ values for dropped tracks,
// (w_0,...,w_{k-1}) ∈ R }. Letters that become all-padding on the kept
// tracks turn into ε-transitions (the dropped tracks were strictly longer),
// which are then eliminated.
func (r *Relation) Project(keep []int) (*Relation, error) {
	if len(keep) == 0 {
		return nil, fmt.Errorf("synchro: projection must keep at least one track")
	}
	for _, k := range keep {
		if k < 0 || k >= r.arity {
			return nil, fmt.Errorf("synchro: projection track %d out of range", k)
		}
	}
	if r.universal {
		return Universal(r.alpha, len(keep)), nil
	}
	out := automata.NewNFA[string](r.nfa.NumStates())
	for _, q := range r.nfa.StartStates() {
		out.SetStart(q, true)
	}
	for _, q := range r.nfa.AcceptStates() {
		out.SetAccept(q, true)
	}
	for q := 0; q < r.nfa.NumStates(); q++ {
		tupleTransitions(r.nfa, q, func(t alphabet.Tuple, to int) {
			nt := make(alphabet.Tuple, len(keep))
			allPad := true
			for i, src := range keep {
				nt[i] = t[src]
				if t[src] != alphabet.Pad {
					allPad = false
				}
			}
			if allPad {
				out.AddEps(q, to)
			} else {
				out.AddTransition(q, nt.Key(), to)
			}
		})
	}
	clean := out.RemoveEps().Trim()
	// Sanitize: restrict to valid convolutions so that iterated first-order
	// constructions (e.g. Compose chains) never treat pad-gapped junk words
	// as real middle-track witnesses.
	if len(keep) <= 8 {
		if valid, err := validConvolutionsNFA(r.alpha, len(keep)); err == nil {
			clean = clean.Intersect(valid).Trim()
		}
	}
	return &Relation{arity: len(keep), alpha: r.alpha, nfa: clean}, nil
}

// Cylindrify inserts a new unconstrained track at position pos (0-based),
// returning a relation of arity k+1: { (w_0,...,w_{pos-1}, x, w_pos, ...) :
// (w_0,...,w_{k-1}) ∈ R, x ∈ A* }. The new track may carry any symbol or
// padding on every letter; additionally the new track may extend beyond all
// original tracks (suffix letters where only the new track is active).
func (r *Relation) Cylindrify(pos int) (*Relation, error) {
	if pos < 0 || pos > r.arity {
		return nil, fmt.Errorf("synchro: cylindrification position %d out of range", pos)
	}
	if r.universal {
		return Universal(r.alpha, r.arity+1), nil
	}
	syms := append([]alphabet.Symbol{alphabet.Pad}, r.alpha.Symbols()...)
	out := automata.NewNFA[string](r.nfa.NumStates())
	for _, q := range r.nfa.StartStates() {
		out.SetStart(q, true)
	}
	for _, q := range r.nfa.AcceptStates() {
		out.SetAccept(q, true)
	}
	for q := 0; q < r.nfa.NumStates(); q++ {
		tupleTransitions(r.nfa, q, func(t alphabet.Tuple, to int) {
			for _, x := range syms {
				nt := make(alphabet.Tuple, r.arity+1)
				copy(nt, t[:pos])
				nt[pos] = x
				copy(nt[pos+1:], t[pos:])
				out.AddTransition(q, nt.Key(), to)
			}
		})
	}
	// Tail: the new track continues after all original tracks ended. Add a
	// tail state reachable from every accepting state, looping on letters
	// that are pad everywhere except the new track.
	tail := out.AddState()
	out.SetAccept(tail, true)
	for _, s := range r.alpha.Symbols() {
		nt := make(alphabet.Tuple, r.arity+1)
		for i := range nt {
			nt[i] = alphabet.Pad
		}
		nt[pos] = s
		key := nt.Key()
		for _, q := range out.AcceptStates() {
			if q != tail {
				out.AddTransition(q, key, tail)
			}
		}
		out.AddTransition(tail, key, tail)
	}
	return &Relation{arity: r.arity + 1, alpha: r.alpha, nfa: out}, nil
}

// Compose returns the composition R ∘ S = { (u, w) : ∃v, (u,v) ∈ R and
// (v,w) ∈ S } of two binary relations, using cylindrification, intersection
// and projection (synchronous relations are closed under first-order
// operations).
func (r *Relation) Compose(s *Relation) (*Relation, error) {
	if r.arity != 2 || s.arity != 2 {
		return nil, fmt.Errorf("synchro: compose requires binary relations (got %d and %d)", r.arity, s.arity)
	}
	// R over tracks (u, v) → cylindrify to (u, v, w).
	rc, err := r.Cylindrify(2)
	if err != nil {
		return nil, err
	}
	// S over tracks (v, w) → cylindrify to (u, v, w).
	sc, err := s.Cylindrify(0)
	if err != nil {
		return nil, err
	}
	both, err := rc.Intersect(sc)
	if err != nil {
		return nil, err
	}
	return both.Project([]int{0, 2})
}

// SubsetOf reports whether r ⊆ s, by emptiness of r ∩ complement(s). Both
// relations must have the same arity; the complement construction bounds
// this to small arities (see Complement).
func (r *Relation) SubsetOf(s *Relation) (bool, error) {
	if r.arity != s.arity {
		return false, fmt.Errorf("synchro: subset arities %d and %d", r.arity, s.arity)
	}
	if s.universal {
		return true, nil
	}
	comp, err := s.Complement()
	if err != nil {
		return false, err
	}
	inter, err := r.Intersect(comp)
	if err != nil {
		return false, err
	}
	_, empty := inter.IsEmpty()
	return empty, nil
}

// EquivalentTo reports whether r and s contain exactly the same tuples.
func (r *Relation) EquivalentTo(s *Relation) (bool, error) {
	sub, err := r.SubsetOf(s)
	if err != nil {
		return false, err
	}
	if !sub {
		return false, nil
	}
	return s.SubsetOf(r)
}

// Difference returns r \ s (same arity required; subject to the Complement
// arity bound).
func (r *Relation) Difference(s *Relation) (*Relation, error) {
	if r.arity != s.arity {
		return nil, fmt.Errorf("synchro: difference arities %d and %d", r.arity, s.arity)
	}
	comp, err := s.Complement()
	if err != nil {
		return nil, err
	}
	return r.Intersect(comp)
}
