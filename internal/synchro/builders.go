package synchro

import (
	"fmt"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
	"ecrpq/internal/invariant"
)

// Universal returns the relation (A*)^k. It is kept symbolic; most
// operations special-case it, and NFA() materializes on demand for small
// (|A|+1)^k.
func Universal(a *alphabet.Alphabet, k int) *Relation {
	return &Relation{arity: k, alpha: a, universal: true, name: "universal"}
}

// Lift turns a regular language (an NFA over single symbols) into a unary
// relation.
func Lift(a *alphabet.Alphabet, lang *automata.NFA[alphabet.Symbol]) *Relation {
	clean := lang.RemoveEps()
	n := automata.NewNFA[string](clean.NumStates())
	for _, q := range clean.StartStates() {
		n.SetStart(q, true)
	}
	for _, q := range clean.AcceptStates() {
		n.SetAccept(q, true)
	}
	clean.Transitions(func(p int, s alphabet.Symbol, q int) {
		n.AddTransition(p, alphabet.Tuple{s}.Key(), q)
	})
	return &Relation{arity: 1, alpha: a, nfa: n, name: "lang"}
}

// Equality returns the k-ary relation {(w, ..., w) : w ∈ A*}.
func Equality(a *alphabet.Alphabet, k int) *Relation {
	nfa := automata.NewNFA[string](1)
	nfa.SetStart(0, true)
	nfa.SetAccept(0, true)
	t := make(alphabet.Tuple, k)
	for _, s := range a.Symbols() {
		for i := range t {
			t[i] = s
		}
		nfa.AddTransition(0, t.Key(), 0)
	}
	return &Relation{arity: k, alpha: a, nfa: nfa, name: "eq"}
}

// EqualLength returns the k-ary relation {(w1,...,wk) : |w1| = ... = |wk|}.
// Its NFA has |A|^k letters on a single state; keep k small.
func EqualLength(a *alphabet.Alphabet, k int) *Relation {
	nfa := automata.NewNFA[string](1)
	nfa.SetStart(0, true)
	nfa.SetAccept(0, true)
	t := make(alphabet.Tuple, k)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			nfa.AddTransition(0, t.Key(), 0)
			return
		}
		for _, s := range a.Symbols() {
			t[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	return &Relation{arity: k, alpha: a, nfa: nfa, name: "eq-len"}
}

// PrefixOf returns the binary relation {(u, v) : u is a prefix of v}.
func PrefixOf(a *alphabet.Alphabet) *Relation {
	// State 0: still reading the common prefix; state 1: u has ended.
	nfa := automata.NewNFA[string](2)
	nfa.SetStart(0, true)
	nfa.SetAccept(0, true)
	nfa.SetAccept(1, true)
	for _, s := range a.Symbols() {
		nfa.AddTransition(0, alphabet.Tuple{s, s}.Key(), 0)
		nfa.AddTransition(0, alphabet.Tuple{alphabet.Pad, s}.Key(), 1)
		nfa.AddTransition(1, alphabet.Tuple{alphabet.Pad, s}.Key(), 1)
	}
	return &Relation{arity: 2, alpha: a, nfa: nfa, name: "prefix"}
}

// HammingAtMost returns the binary relation of equal-length words differing
// in at most d positions.
func HammingAtMost(a *alphabet.Alphabet, d int) *Relation {
	nfa := automata.NewNFA[string](d + 1)
	nfa.SetStart(0, true)
	for i := 0; i <= d; i++ {
		nfa.SetAccept(i, true)
	}
	for i := 0; i <= d; i++ {
		for _, s := range a.Symbols() {
			for _, s2 := range a.Symbols() {
				if s == s2 {
					nfa.AddTransition(i, alphabet.Tuple{s, s2}.Key(), i)
				} else if i < d {
					nfa.AddTransition(i, alphabet.Tuple{s, s2}.Key(), i+1)
				}
			}
		}
	}
	return &Relation{arity: 2, alpha: a, nfa: nfa, name: fmt.Sprintf("hamming<=%d", d)}
}

// LengthDiffAtMost returns the binary relation {(u,v) : ||u|-|v|| ≤ d}.
func LengthDiffAtMost(a *alphabet.Alphabet, d int) *Relation {
	// States: 0 = both running; 1..d = first track padded for i letters;
	// d+1..2d = second track padded.
	nfa := automata.NewNFA[string](2*d + 1)
	nfa.SetStart(0, true)
	for q := 0; q <= 2*d; q++ {
		nfa.SetAccept(q, true)
	}
	for _, s1 := range a.Symbols() {
		for _, s2 := range a.Symbols() {
			nfa.AddTransition(0, alphabet.Tuple{s1, s2}.Key(), 0)
		}
	}
	for _, s := range a.Symbols() {
		for i := 0; i < d; i++ {
			// first track padded: v longer
			from := 0
			if i > 0 {
				from = i
			}
			nfa.AddTransition(from, alphabet.Tuple{alphabet.Pad, s}.Key(), i+1)
			// second track padded: u longer
			from2 := 0
			if i > 0 {
				from2 = d + i
			}
			nfa.AddTransition(from2, alphabet.Tuple{s, alphabet.Pad}.Key(), d+i+1)
		}
	}
	return &Relation{arity: 2, alpha: a, nfa: nfa, name: fmt.Sprintf("lendiff<=%d", d)}
}

// editOne returns the binary relation {(u, v) : ed(u, v) ≤ 1}: equality, one
// substitution, one insertion into u giving v, or one deletion from u giving
// v.
func editOne(a *alphabet.Alphabet) *Relation {
	subst := HammingAtMost(a, 1)
	ins := insertion(a)
	del := ins.Permute([]int{1, 0})
	r := invariant.Must(subst.Union(ins))
	r = invariant.Must(r.Union(del))
	return r.WithName("edit<=1")
}

// insertion returns {(u, v) : v is u with exactly one symbol inserted}.
func insertion(a *alphabet.Alphabet) *Relation {
	// States: 0 = before the insertion point; pending(a) = the insertion
	// happened, u's symbol a is buffered one position behind v; done = u has
	// ended and the buffered symbol was flushed.
	n := a.Size()
	nfa := automata.NewNFA[string](n + 2)
	pre := 0
	pending := func(s alphabet.Symbol) int { return 1 + int(s) }
	done := n + 1
	nfa.SetStart(pre, true)
	nfa.SetAccept(done, true)
	for _, s := range a.Symbols() {
		// Common prefix.
		nfa.AddTransition(pre, alphabet.Tuple{s, s}.Key(), pre)
		// Insertion happens here: v reads the inserted symbol x while u's
		// symbol s becomes pending.
		for _, x := range a.Symbols() {
			nfa.AddTransition(pre, alphabet.Tuple{s, x}.Key(), pending(s))
		}
		// Insertion at the very end of u: u pads, v reads the new symbol.
		nfa.AddTransition(pre, alphabet.Tuple{alphabet.Pad, s}.Key(), done)
	}
	for _, s := range a.Symbols() {
		for _, s2 := range a.Symbols() {
			// v must now read the pending symbol s; u's new symbol s2 is
			// buffered in turn.
			nfa.AddTransition(pending(s), alphabet.Tuple{s2, s}.Key(), pending(s2))
		}
		// u ends; v flushes the last pending symbol.
		nfa.AddTransition(pending(s), alphabet.Tuple{alphabet.Pad, s}.Key(), done)
	}
	return &Relation{arity: 2, alpha: a, nfa: nfa, name: "insert1"}
}

// EditDistanceAtMost returns the binary relation of words at Levenshtein
// distance at most d, built as the d-fold composition of the distance-1
// relation (synchronous relations are closed under composition). The
// construction is exponential in d; keep d small (the paper's own example
// uses a constant, "edit-distance at most 14").
func EditDistanceAtMost(a *alphabet.Alphabet, d int) (*Relation, error) {
	if d < 0 {
		return nil, fmt.Errorf("synchro: negative edit distance bound %d", d)
	}
	if d == 0 {
		return Equality(a, 2).WithName("edit<=0"), nil
	}
	step := editOne(a)
	cur := step
	for i := 1; i < d; i++ {
		next, err := cur.Compose(step)
		if err != nil {
			return nil, err
		}
		cur = next.Minimized()
	}
	return cur.WithName(fmt.Sprintf("edit<=%d", d)), nil
}

// FromTuples returns the finite relation containing exactly the given word
// tuples.
func FromTuples(a *alphabet.Alphabet, k int, tuples ...[]alphabet.Word) (*Relation, error) {
	nfa := automata.NewNFA[string](1)
	nfa.SetStart(0, true)
	for _, words := range tuples {
		if len(words) != k {
			return nil, fmt.Errorf("synchro: tuple has %d words, want %d", len(words), k)
		}
		cur := 0
		conv := alphabet.Convolve(words...)
		for _, t := range conv {
			next := nfa.AddState()
			nfa.AddTransition(cur, t.Key(), next)
			cur = next
		}
		nfa.SetAccept(cur, true)
	}
	return FromNFA(a, k, nfa)
}

// Minimized returns an equivalent relation with a determinized+minimized
// underlying automaton (useful to tame composition growth). Universal
// relations are returned unchanged.
func (r *Relation) Minimized() *Relation {
	if r.universal {
		return r
	}
	min := r.nfa.Determinize().Minimize().ToNFA()
	return &Relation{arity: r.arity, alpha: r.alpha, nfa: min, name: r.name}
}
