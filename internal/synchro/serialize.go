package synchro

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
)

// Format writes the relation in a line-oriented textual form readable by
// Parse:
//
//	relation <name>
//	arity 2
//	alphabet a b
//	states 3
//	start 0
//	accept 0 2
//	0 (a,a) 0
//	0 (a,⊥) 1
//	...
//
// Universal relations serialize as "universal" instead of states and
// transitions.
func (r *Relation) Format(w io.Writer) error {
	name := r.name
	if name == "" {
		name = "rel"
	}
	if _, err := fmt.Fprintf(w, "relation %s\narity %d\nalphabet %s\n",
		name, r.arity, strings.Join(r.alpha.Names(), " ")); err != nil {
		return err
	}
	if r.universal {
		_, err := fmt.Fprintln(w, "universal")
		return err
	}
	nfa := r.nfa
	if _, err := fmt.Fprintf(w, "states %d\n", nfa.NumStates()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "start %s\n", joinInts(nfa.StartStates())); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "accept %s\n", joinInts(nfa.AcceptStates())); err != nil {
		return err
	}
	type row struct {
		p, q int
		t    alphabet.Tuple
	}
	var rows []row
	nfa.Transitions(func(p int, l string, q int) {
		t, err := alphabet.TupleFromKey(l)
		if err != nil {
			return
		}
		rows = append(rows, row{p, q, t})
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].p != rows[j].p {
			return rows[i].p < rows[j].p
		}
		if rows[i].q != rows[j].q {
			return rows[i].q < rows[j].q
		}
		return rows[i].t.Key() < rows[j].t.Key()
	})
	for _, rw := range rows {
		if _, err := fmt.Fprintf(w, "%d %s %d\n", rw.p, formatTuple(r.alpha, rw.t), rw.q); err != nil {
			return err
		}
	}
	return nil
}

// FormatString renders the relation as text.
func (r *Relation) FormatString() string {
	var sb strings.Builder
	_ = r.Format(&sb)
	return sb.String()
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, " ")
}

func formatTuple(a *alphabet.Alphabet, t alphabet.Tuple) string {
	parts := make([]string, len(t))
	for i, s := range t {
		if s == alphabet.Pad {
			parts[i] = "⊥"
		} else {
			parts[i] = a.Name(s)
		}
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Parse reads a relation in the Format textual form.
func Parse(r io.Reader) (*Relation, error) {
	sc := bufio.NewScanner(r)
	var (
		name      string
		arity     = -1
		alpha     *alphabet.Alphabet
		universal bool
		nfa       *automata.NFA[string]
		numStates = -1
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "relation":
			if len(fields) != 2 {
				return nil, fmt.Errorf("synchro: line %d: want 'relation <name>'", lineNo)
			}
			name = fields[1]
		case "arity":
			v, err := strconv.Atoi(fields[len(fields)-1])
			if err != nil || v < 1 {
				return nil, fmt.Errorf("synchro: line %d: bad arity", lineNo)
			}
			arity = v
		case "alphabet":
			a, err := alphabet.New(fields[1:]...)
			if err != nil {
				return nil, fmt.Errorf("synchro: line %d: %v", lineNo, err)
			}
			alpha = a
		case "universal":
			universal = true
		case "states":
			v, err := strconv.Atoi(fields[len(fields)-1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("synchro: line %d: bad state count", lineNo)
			}
			numStates = v
			nfa = automata.NewNFA[string](v)
		case "start", "accept":
			if nfa == nil {
				return nil, fmt.Errorf("synchro: line %d: %s before states", lineNo, fields[0])
			}
			for _, f := range fields[1:] {
				q, err := strconv.Atoi(f)
				if err != nil || q < 0 || q >= numStates {
					return nil, fmt.Errorf("synchro: line %d: bad state %q", lineNo, f)
				}
				if fields[0] == "start" {
					nfa.SetStart(q, true)
				} else {
					nfa.SetAccept(q, true)
				}
			}
		default:
			// Transition: p (x,y) q
			if nfa == nil || alpha == nil || arity < 0 {
				return nil, fmt.Errorf("synchro: line %d: transition before header", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("synchro: line %d: want 'p (letters) q'", lineNo)
			}
			p, err1 := strconv.Atoi(fields[0])
			q, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || p < 0 || p >= numStates || q < 0 || q >= numStates {
				return nil, fmt.Errorf("synchro: line %d: bad transition states", lineNo)
			}
			t, err := parseTuple(alpha, arity, fields[1])
			if err != nil {
				return nil, fmt.Errorf("synchro: line %d: %v", lineNo, err)
			}
			nfa.AddTransition(p, t.Key(), q)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if alpha == nil || arity < 0 {
		return nil, fmt.Errorf("synchro: missing arity or alphabet header")
	}
	if universal {
		return Universal(alpha, arity).WithName(name), nil
	}
	if nfa == nil {
		return nil, fmt.Errorf("synchro: missing states section")
	}
	rel, err := FromNFA(alpha, arity, nfa)
	if err != nil {
		return nil, err
	}
	return rel.WithName(name), nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Relation, error) { return Parse(strings.NewReader(s)) }

func parseTuple(a *alphabet.Alphabet, arity int, s string) (alphabet.Tuple, error) {
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("malformed letter %q", s)
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	if len(parts) != arity {
		return nil, fmt.Errorf("letter %q has %d tracks, want %d", s, len(parts), arity)
	}
	t := make(alphabet.Tuple, arity)
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "⊥" || p == "_" {
			t[i] = alphabet.Pad
			continue
		}
		sym, ok := a.Lookup(p)
		if !ok {
			return nil, fmt.Errorf("unknown symbol %q", p)
		}
		t[i] = sym
	}
	return t, nil
}
