package synchro

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
	"ecrpq/internal/rex"
)

// allWords enumerates every word over a of length ≤ maxLen.
func allWords(a *alphabet.Alphabet, maxLen int) []alphabet.Word {
	out := []alphabet.Word{{}}
	frontier := []alphabet.Word{{}}
	for l := 0; l < maxLen; l++ {
		var next []alphabet.Word
		for _, w := range frontier {
			for _, s := range a.Symbols() {
				nw := append(w.Clone(), s)
				next = append(next, nw)
				out = append(out, nw)
			}
		}
		frontier = next
	}
	return out
}

func levenshtein(u, v alphabet.Word) int {
	n, m := len(u), len(v)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if u[i-1] == v[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func TestEquality(t *testing.T) {
	a := alphabet.Lower(2)
	eq := Equality(a, 2)
	words := allWords(a, 3)
	for _, u := range words {
		for _, v := range words {
			want := u.Equal(v)
			got, err := eq.Contains(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("eq(%v, %v) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestEqualityTernary(t *testing.T) {
	a := alphabet.Lower(2)
	eq := Equality(a, 3)
	w := alphabet.MustParseWord(a, "ab")
	v := alphabet.MustParseWord(a, "ba")
	if !eq.MustContain(w, w, w) {
		t.Error("eq3 should contain (w,w,w)")
	}
	if eq.MustContain(w, w, v) {
		t.Error("eq3 should reject (w,w,v)")
	}
}

func TestEqualLength(t *testing.T) {
	a := alphabet.Lower(2)
	el := EqualLength(a, 2)
	words := allWords(a, 3)
	for _, u := range words {
		for _, v := range words {
			want := len(u) == len(v)
			if got := el.MustContain(u, v); got != want {
				t.Errorf("eqlen(%v, %v) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestPrefixOf(t *testing.T) {
	a := alphabet.Lower(2)
	pre := PrefixOf(a)
	words := allWords(a, 4)
	for _, u := range words {
		for _, v := range words {
			want := len(u) <= len(v) && v[:len(u)].Equal(u)
			if got := pre.MustContain(u, v); got != want {
				t.Errorf("prefix(%v, %v) = %v, want %v",
					u.Format(a), v.Format(a), got, want)
			}
		}
	}
}

func TestHammingAtMost(t *testing.T) {
	a := alphabet.Lower(2)
	for d := 0; d <= 2; d++ {
		h := HammingAtMost(a, d)
		words := allWords(a, 3)
		for _, u := range words {
			for _, v := range words {
				want := false
				if len(u) == len(v) {
					diff := 0
					for i := range u {
						if u[i] != v[i] {
							diff++
						}
					}
					want = diff <= d
				}
				if got := h.MustContain(u, v); got != want {
					t.Errorf("hamming<=%d(%v, %v) = %v, want %v", d, u, v, got, want)
				}
			}
		}
	}
}

func TestLengthDiffAtMost(t *testing.T) {
	a := alphabet.Lower(2)
	for d := 0; d <= 2; d++ {
		r := LengthDiffAtMost(a, d)
		words := allWords(a, 4)
		for _, u := range words {
			for _, v := range words {
				diff := len(u) - len(v)
				if diff < 0 {
					diff = -diff
				}
				want := diff <= d
				if got := r.MustContain(u, v); got != want {
					t.Errorf("lendiff<=%d(%v, %v) = %v, want %v",
						d, u.Format(a), v.Format(a), got, want)
				}
			}
		}
	}
}

func TestInsertion(t *testing.T) {
	a := alphabet.Lower(2)
	ins := insertion(a)
	words := allWords(a, 3)
	for _, u := range words {
		for _, v := range words {
			want := false
			if len(v) == len(u)+1 {
				for i := 0; i <= len(u); i++ {
					cand := append(append(u[:i:i].Clone(), v[i]), u[i:]...)
					if cand.Equal(v) {
						want = true
						break
					}
				}
			}
			if got := ins.MustContain(u, v); got != want {
				t.Errorf("insert1(%v, %v) = %v, want %v",
					u.Format(a), v.Format(a), got, want)
			}
		}
	}
}

func TestEditDistanceAtMost(t *testing.T) {
	a := alphabet.Lower(2)
	for d := 0; d <= 2; d++ {
		ed, err := EditDistanceAtMost(a, d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		words := allWords(a, 3)
		for _, u := range words {
			for _, v := range words {
				want := levenshtein(u, v) <= d
				if got := ed.MustContain(u, v); got != want {
					t.Errorf("edit<=%d(%v, %v) = %v, want %v (lev=%d)",
						d, u.Format(a), v.Format(a), got, want, levenshtein(u, v))
				}
			}
		}
	}
}

func TestEditDistanceNegative(t *testing.T) {
	a := alphabet.Lower(2)
	if _, err := EditDistanceAtMost(a, -1); err == nil {
		t.Error("negative bound should error")
	}
}

func TestLift(t *testing.T) {
	a := alphabet.Lower(2)
	lang := rex.MustCompileString(a, "a*b")
	r := Lift(a, lang)
	if r.Arity() != 1 {
		t.Fatalf("arity = %d", r.Arity())
	}
	for _, c := range []struct {
		w    string
		want bool
	}{{"b", true}, {"aab", true}, {"", false}, {"ba", false}} {
		w := alphabet.MustParseWord(a, c.w)
		if got := r.MustContain(w); got != c.want {
			t.Errorf("lift(a*b)(%q) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestUniversal(t *testing.T) {
	a := alphabet.Lower(2)
	u := Universal(a, 3)
	if !u.IsUniversal() {
		t.Error("should be universal")
	}
	w := alphabet.MustParseWord(a, "ab")
	if !u.MustContain(w, alphabet.Word{}, w) {
		t.Error("universal should contain everything")
	}
	words, empty := u.IsEmpty()
	if empty || len(words) != 3 {
		t.Errorf("IsEmpty = %v, %v", words, empty)
	}
	nfa, err := u.NFA()
	if err != nil {
		t.Fatalf("NFA: %v", err)
	}
	// (2+1)^3 - 1 = 26 letters
	if nfa.NumTransitions() != 26 {
		t.Errorf("universal NFA transitions = %d, want 26", nfa.NumTransitions())
	}
}

func TestUniversalTooLargeToMaterialize(t *testing.T) {
	a := alphabet.Lower(4)
	u := Universal(a, 20)
	if _, err := u.NFA(); err == nil {
		t.Error("materializing (5)^20 letters should error")
	}
}

func TestContainsErrors(t *testing.T) {
	a := alphabet.Lower(2)
	eq := Equality(a, 2)
	if _, err := eq.Contains(alphabet.Word{}); err == nil {
		t.Error("wrong arity should error")
	}
	if _, err := eq.Contains(alphabet.Word{9}, alphabet.Word{}); err == nil {
		t.Error("out-of-alphabet word should error")
	}
}

func TestFromNFAValidation(t *testing.T) {
	a := alphabet.Lower(2)
	// All-pad letter.
	bad := automata.NewNFA[string](1)
	bad.SetStart(0, true)
	bad.SetAccept(0, true)
	bad.AddTransition(0, alphabet.Tuple{alphabet.Pad, alphabet.Pad}.Key(), 0)
	if _, err := FromNFA(a, 2, bad); err == nil {
		t.Error("all-pad letter should be rejected")
	}
	// Wrong arity letter.
	bad2 := automata.NewNFA[string](1)
	bad2.SetStart(0, true)
	bad2.SetAccept(0, true)
	bad2.AddTransition(0, alphabet.Tuple{0}.Key(), 0)
	if _, err := FromNFA(a, 2, bad2); err == nil {
		t.Error("wrong-arity letter should be rejected")
	}
	// Foreign symbol.
	bad3 := automata.NewNFA[string](1)
	bad3.SetStart(0, true)
	bad3.SetAccept(0, true)
	bad3.AddTransition(0, alphabet.Tuple{9, 0}.Key(), 0)
	if _, err := FromNFA(a, 2, bad3); err == nil {
		t.Error("foreign symbol should be rejected")
	}
	// Malformed key.
	bad4 := automata.NewNFA[string](1)
	bad4.SetStart(0, true)
	bad4.SetAccept(0, true)
	bad4.AddTransition(0, "xyz", 0)
	if _, err := FromNFA(a, 2, bad4); err == nil {
		t.Error("malformed key should be rejected")
	}
	if _, err := FromNFA(a, 0, automata.NewNFA[string](0)); err == nil {
		t.Error("arity 0 should be rejected")
	}
}

func TestIsEmptyWitness(t *testing.T) {
	a := alphabet.Lower(2)
	ed, _ := EditDistanceAtMost(a, 1)
	words, empty := ed.IsEmpty()
	if empty {
		t.Fatal("edit<=1 is not empty")
	}
	if !ed.MustContain(words...) {
		t.Errorf("witness %v not in relation", words)
	}
}

func TestIsEmptyOnEmptyRelation(t *testing.T) {
	a := alphabet.Lower(2)
	r, err := FromTuples(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, empty := r.IsEmpty(); !empty {
		t.Error("empty FromTuples should be empty")
	}
}

func TestIsEmptyFiltersInvalidConvolutions(t *testing.T) {
	// An NFA that only accepts an invalid convolution: (⊥,a)(a,a).
	a := alphabet.Lower(2)
	n := automata.NewNFA[string](3)
	n.SetStart(0, true)
	n.AddTransition(0, alphabet.Tuple{alphabet.Pad, 0}.Key(), 1)
	n.AddTransition(1, alphabet.Tuple{0, 0}.Key(), 2)
	n.SetAccept(2, true)
	r := MustFromNFA(a, 2, n)
	if _, empty := r.IsEmpty(); !empty {
		// The NFA accepts a word, but no valid convolution: relation empty.
		t.Error("relation with only invalid convolutions should be empty")
	}
}

func TestFromTuples(t *testing.T) {
	a := alphabet.Lower(2)
	u := alphabet.MustParseWord(a, "ab")
	v := alphabet.MustParseWord(a, "b")
	r, err := FromTuples(a, 2, []alphabet.Word{u, v}, []alphabet.Word{v, v})
	if err != nil {
		t.Fatal(err)
	}
	if !r.MustContain(u, v) || !r.MustContain(v, v) {
		t.Error("FromTuples missing tuples")
	}
	if r.MustContain(u, u) || r.MustContain(v, u) {
		t.Error("FromTuples contains extra tuples")
	}
	if _, err := FromTuples(a, 2, []alphabet.Word{u}); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestIntersectUnion(t *testing.T) {
	a := alphabet.Lower(2)
	eq := Equality(a, 2)
	el := EqualLength(a, 2)
	pre := PrefixOf(a)

	inter, err := el.Intersect(pre)
	if err != nil {
		t.Fatal(err)
	}
	// equal length ∧ prefix = equality
	words := allWords(a, 3)
	for _, u := range words {
		for _, v := range words {
			if inter.MustContain(u, v) != eq.MustContain(u, v) {
				t.Errorf("eqlen∩prefix ≠ eq at (%v,%v)", u, v)
			}
		}
	}

	un, err := eq.Union(pre)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range words {
		for _, v := range words {
			want := eq.MustContain(u, v) || pre.MustContain(u, v)
			if un.MustContain(u, v) != want {
				t.Errorf("eq∪prefix wrong at (%v,%v)", u, v)
			}
		}
	}

	if _, err := eq.Intersect(Equality(a, 3)); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := eq.Union(Equality(a, 3)); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestIntersectUnionWithUniversal(t *testing.T) {
	a := alphabet.Lower(2)
	eq := Equality(a, 2)
	u := Universal(a, 2)
	i1, _ := eq.Intersect(u)
	i2, _ := u.Intersect(eq)
	w := alphabet.MustParseWord(a, "ab")
	v := alphabet.MustParseWord(a, "ba")
	if !i1.MustContain(w, w) || i1.MustContain(w, v) {
		t.Error("eq ∩ universal should be eq")
	}
	if !i2.MustContain(w, w) || i2.MustContain(w, v) {
		t.Error("universal ∩ eq should be eq")
	}
	u1, _ := eq.Union(u)
	u2, _ := u.Union(eq)
	if !u1.IsUniversal() || !u2.IsUniversal() {
		t.Error("union with universal should be universal")
	}
}

func TestComplement(t *testing.T) {
	a := alphabet.Lower(2)
	eq := Equality(a, 2)
	neq, err := eq.Complement()
	if err != nil {
		t.Fatal(err)
	}
	words := allWords(a, 3)
	for _, u := range words {
		for _, v := range words {
			if neq.MustContain(u, v) == eq.MustContain(u, v) {
				t.Errorf("complement not disjoint at (%v,%v)", u, v)
			}
		}
	}
}

func TestComplementOfUniversalIsEmpty(t *testing.T) {
	a := alphabet.Lower(2)
	c, err := Universal(a, 2).Complement()
	if err != nil {
		t.Fatal(err)
	}
	if _, empty := c.IsEmpty(); !empty {
		t.Error("complement of universal should be empty")
	}
}

func TestPermute(t *testing.T) {
	a := alphabet.Lower(2)
	pre := PrefixOf(a)
	suf := pre.Permute([]int{1, 0}) // (u,v) : v prefix of u
	u := alphabet.MustParseWord(a, "abb")
	v := alphabet.MustParseWord(a, "ab")
	if !suf.MustContain(u, v) {
		t.Error("permuted prefix should contain (abb, ab)")
	}
	if suf.MustContain(v, u) {
		t.Error("permuted prefix should reject (ab, abb)")
	}
	// Identity permutation on universal.
	if !Universal(a, 2).Permute([]int{0, 1}).IsUniversal() {
		t.Error("permuted universal should stay universal")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad permutation should panic")
		}
	}()
	pre.Permute([]int{0, 0})
}

func TestProject(t *testing.T) {
	a := alphabet.Lower(2)
	// Project prefix relation onto track 0: all words (every word is a
	// prefix of something).
	pre := PrefixOf(a)
	p0, err := pre.Project([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range allWords(a, 3) {
		if !p0.MustContain(w) {
			t.Errorf("projection should contain %v", w)
		}
	}
	// Projection of {(ab, b)} onto track 1 = {b}.
	r, _ := FromTuples(a, 2, []alphabet.Word{
		alphabet.MustParseWord(a, "ab"), alphabet.MustParseWord(a, "b")})
	p1, err := r.Project([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !p1.MustContain(alphabet.MustParseWord(a, "b")) {
		t.Error("projection missing b")
	}
	if p1.MustContain(alphabet.MustParseWord(a, "ab")) {
		t.Error("projection should not contain ab")
	}
	if _, err := pre.Project(nil); err == nil {
		t.Error("empty projection should error")
	}
	if _, err := pre.Project([]int{5}); err == nil {
		t.Error("out-of-range projection should error")
	}
	pu, err := Universal(a, 3).Project([]int{0, 2})
	if err != nil || !pu.IsUniversal() || pu.Arity() != 2 {
		t.Error("projection of universal should be universal of reduced arity")
	}
}

func TestCylindrify(t *testing.T) {
	a := alphabet.Lower(2)
	eq := Equality(a, 2)
	c, err := eq.Cylindrify(1) // (u, x, v) with u = v, x free
	if err != nil {
		t.Fatal(err)
	}
	if c.Arity() != 3 {
		t.Fatalf("arity = %d", c.Arity())
	}
	u := alphabet.MustParseWord(a, "ab")
	long := alphabet.MustParseWord(a, "aabba")
	short := alphabet.MustParseWord(a, "b")
	for _, x := range []alphabet.Word{{}, short, u, long} {
		if !c.MustContain(u, x, u) {
			t.Errorf("cylindrification should contain (u, %v, u)", x.Format(a))
		}
		if c.MustContain(u, x, short) {
			t.Errorf("cylindrification should reject (u, %v, short)", x.Format(a))
		}
	}
	if _, err := eq.Cylindrify(7); err == nil {
		t.Error("out-of-range position should error")
	}
	cu, err := Universal(a, 2).Cylindrify(0)
	if err != nil || !cu.IsUniversal() || cu.Arity() != 3 {
		t.Error("cylindrified universal should be universal")
	}
}

func TestCompose(t *testing.T) {
	a := alphabet.Lower(2)
	// prefix ∘ prefix = prefix (transitive).
	pre := PrefixOf(a)
	pp, err := pre.Compose(pre)
	if err != nil {
		t.Fatal(err)
	}
	words := allWords(a, 3)
	for _, u := range words {
		for _, v := range words {
			if pp.MustContain(u, v) != pre.MustContain(u, v) {
				t.Errorf("prefix∘prefix ≠ prefix at (%v,%v)", u.Format(a), v.Format(a))
			}
		}
	}
	if _, err := pre.Compose(Equality(a, 3)); err == nil {
		t.Error("compose of non-binary should error")
	}
}

func TestComposeHamming(t *testing.T) {
	a := alphabet.Lower(2)
	h1 := HammingAtMost(a, 1)
	h2, err := h1.Compose(h1)
	if err != nil {
		t.Fatal(err)
	}
	want := HammingAtMost(a, 2)
	words := allWords(a, 3)
	for _, u := range words {
		for _, v := range words {
			if h2.MustContain(u, v) != want.MustContain(u, v) {
				t.Errorf("h1∘h1 ≠ h2 at (%v,%v)", u.Format(a), v.Format(a))
			}
		}
	}
}

func TestJoinConjunction(t *testing.T) {
	a := alphabet.Lower(2)
	// Merged relation over tracks (x, y, z): eqlen(x,y) ∧ prefix(y,z).
	el := EqualLength(a, 2)
	pre := PrefixOf(a)
	j, err := Join(a, 3, []*Relation{el, pre}, [][]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	words := allWords(a, 2)
	for _, x := range words {
		for _, y := range words {
			for _, z := range words {
				want := el.MustContain(x, y) && pre.MustContain(y, z)
				if got := j.MustContain(x, y, z); got != want {
					t.Errorf("join(%v,%v,%v) = %v, want %v",
						x.Format(a), y.Format(a), z.Format(a), got, want)
				}
			}
		}
	}
}

func TestJoinSharedTrackIntersection(t *testing.T) {
	a := alphabet.Lower(2)
	// Two unary relations on the same track: a*b ∧ (a|b)b — both over track 0.
	r1 := Lift(a, rex.MustCompileString(a, "a*b"))
	r2 := Lift(a, rex.MustCompileString(a, "(a|b)b"))
	j, err := Join(a, 1, []*Relation{r1, r2}, [][]int{{0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range allWords(a, 4) {
		want := r1.MustContain(w) && r2.MustContain(w)
		if got := j.MustContain(w); got != want {
			t.Errorf("join on shared track at %v: got %v want %v", w.Format(a), got, want)
		}
	}
}

func TestJoinWithUniversalAndFreeTracks(t *testing.T) {
	a := alphabet.Lower(2)
	eq := Equality(a, 2)
	u := Universal(a, 2)
	// arity 3: eq(0,1), universal(1,2) — track 2 free in practice.
	j, err := Join(a, 3, []*Relation{eq, u}, [][]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	w := alphabet.MustParseWord(a, "ab")
	v := alphabet.MustParseWord(a, "ba")
	if !j.MustContain(w, w, v) {
		t.Error("join should allow free track values")
	}
	if j.MustContain(w, v, v) {
		t.Error("join must enforce eq on tracks 0,1")
	}
	// All universal: result universal.
	j2, err := Join(a, 2, []*Relation{u}, [][]int{{0, 1}})
	if err != nil || !j2.IsUniversal() {
		t.Error("join of only universal should be universal")
	}
}

func TestJoinErrors(t *testing.T) {
	a := alphabet.Lower(2)
	eq := Equality(a, 2)
	if _, err := Join(a, 2, []*Relation{eq}, nil); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := Join(a, 2, []*Relation{eq}, [][]int{{0}}); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := Join(a, 2, []*Relation{eq}, [][]int{{0, 5}}); err == nil {
		t.Error("out-of-range track should error")
	}
	if _, err := Join(a, 2, []*Relation{eq}, [][]int{{0, 0}}); err == nil {
		t.Error("duplicate track should error")
	}
}

func TestJoinStateBlowupMatchesPaper(t *testing.T) {
	// Lemma 4.1: merged NFA state count is the product of component state
	// counts (after trimming, ≤ product).
	a := alphabet.Lower(2)
	h := HammingAtMost(a, 2) // 3 states
	j, err := Join(a, 4, []*Relation{h, h, h}, [][]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := j.Size()
	if st > 27 {
		t.Errorf("merged states = %d, want ≤ 3^3 = 27", st)
	}
	if st < 3 {
		t.Errorf("merged states = %d suspiciously small", st)
	}
}

func TestMinimizedPreservesRelation(t *testing.T) {
	a := alphabet.Lower(2)
	pre := PrefixOf(a)
	// Bloat with a union of itself, then minimize.
	bloated, _ := pre.Union(pre)
	min := bloated.Minimized()
	words := allWords(a, 3)
	for _, u := range words {
		for _, v := range words {
			if min.MustContain(u, v) != pre.MustContain(u, v) {
				t.Errorf("minimized differs at (%v,%v)", u, v)
			}
		}
	}
	if !Universal(a, 2).Minimized().IsUniversal() {
		t.Error("minimized universal should stay universal")
	}
}

func TestRelationString(t *testing.T) {
	a := alphabet.Lower(2)
	if s := Universal(a, 2).String(); s == "" {
		t.Error("empty String")
	}
	if s := Equality(a, 2).String(); s == "" {
		t.Error("empty String")
	}
	named := Equality(a, 2).WithName("myeq")
	if named.Name() != "myeq" {
		t.Error("WithName failed")
	}
}

func TestJoinRandomizedAgainstDirectProperty(t *testing.T) {
	a := alphabet.Lower(2)
	rels := []*Relation{Equality(a, 2), EqualLength(a, 2), PrefixOf(a), HammingAtMost(a, 1)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r1 := rels[rng.Intn(len(rels))]
		r2 := rels[rng.Intn(len(rels))]
		// Random track maps into arity 3.
		pick := func() []int {
			i := rng.Intn(3)
			j := rng.Intn(3)
			for j == i {
				j = rng.Intn(3)
			}
			return []int{i, j}
		}
		v1, v2 := pick(), pick()
		covered := map[int]bool{}
		for _, x := range append(append([]int{}, v1...), v2...) {
			covered[x] = true
		}
		if len(covered) < 3 {
			return true // leave free-track case to dedicated test
		}
		j, err := Join(a, 3, []*Relation{r1, r2}, [][]int{v1, v2})
		if err != nil {
			return false
		}
		words := allWords(a, 2)
		for i := 0; i < 40; i++ {
			x := words[rng.Intn(len(words))]
			y := words[rng.Intn(len(words))]
			z := words[rng.Intn(len(words))]
			all := []alphabet.Word{x, y, z}
			want := r1.MustContain(all[v1[0]], all[v1[1]]) && r2.MustContain(all[v2[0]], all[v2[1]])
			if j.MustContain(x, y, z) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSubsetOfAndEquivalentTo(t *testing.T) {
	a := alphabet.Lower(2)
	eq := Equality(a, 2)
	el := EqualLength(a, 2)
	pre := PrefixOf(a)

	cases := []struct {
		name   string
		r, s   *Relation
		subset bool
	}{
		{"eq ⊆ eqlen", eq, el, true},
		{"eqlen ⊄ eq", el, eq, false},
		{"eq ⊆ prefix", eq, pre, true},
		{"prefix ⊄ eqlen", pre, el, false},
		{"eq ⊆ universal", eq, Universal(a, 2), true},
		{"hamming0 ⊆ hamming1", HammingAtMost(a, 0), HammingAtMost(a, 1), true},
		{"hamming1 ⊄ hamming0", HammingAtMost(a, 1), HammingAtMost(a, 0), false},
	}
	for _, c := range cases {
		got, err := c.r.SubsetOf(c.s)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.subset {
			t.Errorf("%s = %v, want %v", c.name, got, c.subset)
		}
	}

	// Equivalence: hamming<=0 ≡ eq; prefix∘prefix ≡ prefix.
	if ok, err := HammingAtMost(a, 0).EquivalentTo(eq); err != nil || !ok {
		t.Errorf("hamming0 ≡ eq: %v %v", ok, err)
	}
	pp, err := pre.Compose(pre)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := pp.EquivalentTo(pre); err != nil || !ok {
		t.Errorf("prefix∘prefix ≡ prefix: %v %v", ok, err)
	}
	if ok, _ := eq.EquivalentTo(el); ok {
		t.Error("eq ≢ eqlen")
	}
	if _, err := eq.SubsetOf(Equality(a, 3)); err == nil {
		t.Error("arity mismatch should error")
	}
	// Serialization round trip preserves equivalence.
	back, err := ParseString(pre.FormatString())
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := back.EquivalentTo(pre); err != nil || !ok {
		t.Errorf("serialized prefix ≢ prefix: %v %v", ok, err)
	}
}

func TestEditDistanceMonotoneProperty(t *testing.T) {
	a := alphabet.Lower(2)
	var rels []*Relation
	for d := 0; d <= 2; d++ {
		r, err := EditDistanceAtMost(a, d)
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, r)
	}
	for d := 0; d < 2; d++ {
		ok, err := rels[d].SubsetOf(rels[d+1])
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !ok {
			t.Errorf("edit<=%d ⊄ edit<=%d", d, d+1)
		}
		ok, err = rels[d+1].SubsetOf(rels[d])
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("edit<=%d ⊆ edit<=%d should fail", d+1, d)
		}
	}
}

func TestDifference(t *testing.T) {
	a := alphabet.Lower(2)
	el := EqualLength(a, 2)
	eq := Equality(a, 2)
	// eqlen \ eq = equal length but different words.
	d, err := el.Difference(eq)
	if err != nil {
		t.Fatal(err)
	}
	words := allWords(a, 3)
	for _, u := range words {
		for _, v := range words {
			want := len(u) == len(v) && !u.Equal(v)
			if got := d.MustContain(u, v); got != want {
				t.Errorf("eqlen\\eq(%v, %v) = %v, want %v", u.Format(a), v.Format(a), got, want)
			}
		}
	}
	if _, err := el.Difference(Equality(a, 3)); err == nil {
		t.Error("arity mismatch should error")
	}
	// r \ r is empty.
	self, err := eq.Difference(eq)
	if err != nil {
		t.Fatal(err)
	}
	if _, empty := self.IsEmpty(); !empty {
		t.Error("r \\ r should be empty")
	}
}
