package synchro

import (
	"fmt"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
)

// Join implements the product construction of Lemma 4.1: given relations
// R_1, ..., R_ℓ and, for each, a mapping vars[i] of its tracks into a merged
// track set {0, ..., arity-1}, it builds the arity-ary relation R such that
// for every assignment f of words to merged tracks,
//
//	f|vars[1] ∈ R_1 ∧ ... ∧ f|vars[ℓ] ∈ R_ℓ  ⇔  f ∈ R.
//
// The state space is the product Q_1 × ... × Q_ℓ; acceptance requires every
// component to accept (exactly the paper's construction). Universal
// relations contribute no constraint and no state-space factor. Merged
// tracks covered by no (non-universal) relation range freely over A ∪ {⊥};
// each such track multiplies the joint letter count by |A|+1, so a guard
// rejects joins with more than a few free tracks.
func Join(a *alphabet.Alphabet, arity int, rels []*Relation, vars [][]int) (*Relation, error) {
	if len(rels) != len(vars) {
		return nil, fmt.Errorf("synchro: %d relations but %d variable maps", len(rels), len(vars))
	}
	covered := make([]bool, arity)
	var active []*Relation
	var activeVars [][]int
	for i, r := range rels {
		if len(vars[i]) != r.arity {
			return nil, fmt.Errorf("synchro: relation %d has arity %d but %d variables", i, r.arity, len(vars[i]))
		}
		seen := make(map[int]bool, len(vars[i]))
		for _, v := range vars[i] {
			if v < 0 || v >= arity {
				return nil, fmt.Errorf("synchro: relation %d refers to merged track %d out of range", i, v)
			}
			if seen[v] {
				return nil, fmt.Errorf("synchro: relation %d uses merged track %d twice", i, v)
			}
			seen[v] = true
			if !r.universal {
				covered[v] = true
			}
		}
		if r.alpha != a {
			// Different alphabet object: require identical symbol sets.
			if r.alpha.Size() != a.Size() {
				return nil, fmt.Errorf("synchro: relation %d over a different alphabet", i)
			}
		}
		if r.universal {
			continue
		}
		active = append(active, r)
		activeVars = append(activeVars, vars[i])
	}
	var free []int
	for t, c := range covered {
		if !c {
			free = append(free, t)
		}
	}
	if len(active) == 0 {
		return Universal(a, arity), nil
	}
	freeChoices := 1
	for range free {
		freeChoices *= a.Size() + 1
		if freeChoices > maxMaterializeLetters {
			return nil, fmt.Errorf("synchro: join leaves %d unconstrained tracks; letter blowup too large", len(free))
		}
	}

	ell := len(active)
	encode := func(qs []int) string {
		buf := make([]byte, 4*len(qs))
		for i, q := range qs {
			buf[4*i] = byte(q)
			buf[4*i+1] = byte(q >> 8)
			buf[4*i+2] = byte(q >> 16)
			buf[4*i+3] = byte(q >> 24)
		}
		return string(buf)
	}

	out := automata.NewNFA[string](0)
	idx := make(map[string]int)
	var queue [][]int
	getState := func(qs []int) int {
		k := encode(qs)
		if i, ok := idx[k]; ok {
			return i
		}
		i := out.AddState()
		idx[k] = i
		acc := true
		for j, q := range qs {
			if !active[j].nfa.IsAccept(q) {
				acc = false
				break
			}
		}
		out.SetAccept(i, acc)
		cp := make([]int, len(qs))
		copy(cp, qs)
		queue = append(queue, cp)
		return i
	}

	// All combinations of start states.
	var starts [][]int
	var buildStarts func(i int, cur []int)
	buildStarts = func(i int, cur []int) {
		if i == ell {
			cp := make([]int, ell)
			copy(cp, cur)
			starts = append(starts, cp)
			return
		}
		for _, q := range active[i].nfa.StartStates() {
			cur[i] = q
			buildStarts(i+1, cur)
		}
	}
	buildStarts(0, make([]int, ell))
	for _, s := range starts {
		out.SetStart(getState(s), true)
	}

	// unassigned marker for merged-track symbols during the consistency join.
	const unset = alphabet.Unset

	for qi := 0; qi < len(queue); qi++ {
		qs := queue[qi]
		from := idx[encode(qs)]
		joint := make([]alphabet.Symbol, arity)
		for i := range joint {
			joint[i] = unset
		}
		next := make([]int, ell)
		var emit func(i int)
		emit = func(i int) {
			if i == ell {
				// Fill free tracks with every choice.
				var fill func(j int)
				fill = func(j int) {
					if j == len(free) {
						t := make(alphabet.Tuple, arity)
						copy(t, joint)
						allPad := true
						for _, s := range t {
							if s != alphabet.Pad {
								allPad = false
								break
							}
						}
						if !allPad {
							out.AddTransition(from, t.Key(), getState(next))
						}
						return
					}
					joint[free[j]] = alphabet.Pad
					fill(j + 1)
					for _, s := range a.Symbols() {
						joint[free[j]] = s
						fill(j + 1)
					}
					joint[free[j]] = unset
				}
				fill(0)
				return
			}
			rel := active[i]
			tupleTransitions(rel.nfa, qs[i], func(t alphabet.Tuple, to int) {
				// Check consistency with the current partial joint letter.
				var touched []int
				ok := true
				for k, s := range t {
					mt := activeVars[i][k]
					if joint[mt] == unset {
						joint[mt] = s
						touched = append(touched, mt)
					} else if joint[mt] != s {
						ok = false
						break
					}
				}
				if ok {
					next[i] = to
					emit(i + 1)
				}
				for _, mt := range touched {
					joint[mt] = unset
				}
			})
			// Stall: component i has finished (all of its tracks are padded
			// from here on). Its words' convolution is a strict prefix of
			// the joint convolution, so the automaton stays in place; the
			// final state must still be accepting for the joint word to be
			// accepted.
			var touched []int
			ok := true
			for _, mt := range activeVars[i] {
				if joint[mt] == unset {
					joint[mt] = alphabet.Pad
					touched = append(touched, mt)
				} else if joint[mt] != alphabet.Pad {
					ok = false
					break
				}
			}
			if ok {
				next[i] = qs[i]
				emit(i + 1)
			}
			for _, mt := range touched {
				joint[mt] = unset
			}
		}
		emit(0)
	}
	return &Relation{arity: arity, alpha: a, nfa: out.Trim(), name: "join"}, nil
}
