// Package synchro implements synchronous word relations (also known as
// regular or automatic relations), the relation class underlying ECRPQ
// (Section 2 of the paper).
//
// A k-ary relation R ⊆ (A*)^k is synchronous when the language of
// convolutions { w1 ⊗ ... ⊗ wk : (w1,...,wk) ∈ R } is regular over the
// alphabet (A ∪ {⊥})^k. Relations are represented by NFAs whose letters are
// packed convolution tuples (alphabet.Tuple.Key). The class is closed under
// all Boolean operations, cylindrification, projection, permutation and
// composition — all implemented here — and has decidable emptiness and
// membership.
package synchro

import (
	"fmt"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
	"ecrpq/internal/invariant"
)

// Relation is a k-ary synchronous relation over an alphabet.
//
// A Relation may be flagged universal, meaning (A*)^k; universal relations
// of large arity are kept symbolic because materializing their convolution
// NFA would need (|A|+1)^k letters.
type Relation struct {
	arity     int
	alpha     *alphabet.Alphabet
	nfa       *automata.NFA[string] // letters: alphabet.Tuple.Key(); nil iff universal
	universal bool
	name      string
}

// maxMaterializeLetters bounds (|A|+1)^k when a universal relation must be
// converted to an explicit NFA for a Boolean operation.
const maxMaterializeLetters = 1 << 16

// FromNFA wraps an NFA over packed convolution tuples as a k-ary relation.
// Every letter must decode to a k-tuple over A ∪ {⊥} that is not all-⊥.
func FromNFA(a *alphabet.Alphabet, arity int, nfa *automata.NFA[string]) (*Relation, error) {
	if arity < 1 {
		return nil, fmt.Errorf("synchro: arity %d < 1", arity)
	}
	if err := nfa.Validate(); err != nil {
		return nil, err
	}
	var bad error
	nfa.Transitions(func(p int, l string, q int) {
		if bad != nil {
			return
		}
		t, err := alphabet.TupleFromKey(l)
		if err != nil {
			bad = err
			return
		}
		if len(t) != arity {
			bad = fmt.Errorf("synchro: letter %v has %d tracks, want %d", t, len(t), arity)
			return
		}
		allPad := true
		for _, s := range t {
			if s == alphabet.Pad {
				continue
			}
			allPad = false
			if !a.Contains(s) {
				bad = fmt.Errorf("synchro: letter %v uses symbol outside alphabet", t)
				return
			}
		}
		if allPad {
			bad = fmt.Errorf("synchro: all-padding letter")
		}
	})
	if bad != nil {
		return nil, bad
	}
	return &Relation{arity: arity, alpha: a, nfa: nfa}, nil
}

// MustFromNFA is FromNFA, panicking on error.
func MustFromNFA(a *alphabet.Alphabet, arity int, nfa *automata.NFA[string]) *Relation {
	return invariant.Must(FromNFA(a, arity, nfa))
}

// Arity returns the number of tracks of the relation.
func (r *Relation) Arity() int { return r.arity }

// Alphabet returns the relation's base alphabet.
func (r *Relation) Alphabet() *alphabet.Alphabet { return r.alpha }

// IsUniversal reports whether the relation is flagged as (A*)^k.
func (r *Relation) IsUniversal() bool { return r.universal }

// Name returns the optional human-readable name set by WithName.
func (r *Relation) Name() string { return r.name }

// WithName returns the same relation carrying a display name.
func (r *Relation) WithName(name string) *Relation {
	r2 := *r
	r2.name = name
	return &r2
}

// NFA returns the underlying automaton over packed convolution tuples.
// For symbolic universal relations it materializes one (and errors if the
// letter blowup (|A|+1)^k would be too large).
func (r *Relation) NFA() (*automata.NFA[string], error) {
	if !r.universal {
		return r.nfa, nil
	}
	return universalNFA(r.alpha, r.arity)
}

// RawNFA returns the automaton if the relation is explicit, nil if symbolic
// universal.
func (r *Relation) RawNFA() *automata.NFA[string] { return r.nfa }

func universalNFA(a *alphabet.Alphabet, k int) (*automata.NFA[string], error) {
	count := 1
	for i := 0; i < k; i++ {
		count *= a.Size() + 1
		if count > maxMaterializeLetters {
			return nil, fmt.Errorf("synchro: cannot materialize universal relation of arity %d over %d symbols", k, a.Size())
		}
	}
	// One state, self-loop on every non-all-pad tuple. Invalid convolutions
	// are harmless: no word tuple convolves to them.
	nfa := automata.NewNFA[string](1)
	nfa.SetStart(0, true)
	nfa.SetAccept(0, true)
	for _, t := range alphabet.AllTuples(a, k) {
		nfa.AddTransition(0, t.Key(), 0)
	}
	return nfa, nil
}

// materialized returns an explicit-NFA version of the relation.
func (r *Relation) materialized() (*Relation, error) {
	if !r.universal {
		return r, nil
	}
	nfa, err := universalNFA(r.alpha, r.arity)
	if err != nil {
		return nil, err
	}
	return &Relation{arity: r.arity, alpha: r.alpha, nfa: nfa, name: r.name}, nil
}

// Contains reports whether the tuple of words is in the relation. The number
// of words must equal the arity.
func (r *Relation) Contains(words ...alphabet.Word) (bool, error) {
	if len(words) != r.arity {
		return false, fmt.Errorf("synchro: %d words for arity-%d relation", len(words), r.arity)
	}
	for i, w := range words {
		if !w.Valid(r.alpha) {
			return false, fmt.Errorf("synchro: word %d uses symbols outside the alphabet", i)
		}
	}
	if r.universal {
		return true, nil
	}
	conv := alphabet.Convolve(words...)
	letters := make([]string, len(conv))
	for i, t := range conv {
		letters[i] = t.Key()
	}
	return r.nfa.Accepts(letters), nil
}

// MustContain is Contains, panicking on error.
func (r *Relation) MustContain(words ...alphabet.Word) bool {
	return invariant.Must(r.Contains(words...))
}

// IsEmpty reports whether the relation contains no tuple. When non-empty it
// returns a witness tuple of words. The check intersects with the
// valid-convolution condition on the fly (tracking which tracks have
// finished), so it is exact even if the underlying NFA accepts junk words
// that are not valid convolutions.
func (r *Relation) IsEmpty() ([]alphabet.Word, bool) {
	if r.universal {
		words := make([]alphabet.Word, r.arity)
		for i := range words {
			words[i] = alphabet.Word{}
		}
		return words, false
	}
	type st struct {
		q    int
		mask uint64 // finished tracks (only low `arity` bits used)
	}
	if r.arity > 64 {
		// Fall back to ignoring the validity product for extreme arities.
		letters, empty := r.nfa.IsEmpty()
		if empty {
			return nil, true
		}
		return r.decodeWitness(letters)
	}
	type pred struct {
		prev   int
		letter string
		hasLtr bool
	}
	var states []st
	preds := []pred{}
	idx := make(map[st]int)
	push := func(s st, p pred) int {
		if i, ok := idx[s]; ok {
			return i
		}
		i := len(states)
		idx[s] = i
		states = append(states, s)
		preds = append(preds, p)
		return i
	}
	for _, q := range r.nfa.StartStates() {
		push(st{q, 0}, pred{prev: -1})
	}
	goal := -1
	for i := 0; i < len(states) && goal < 0; i++ {
		cur := states[i]
		if r.nfa.IsAccept(cur.q) {
			goal = i
			break
		}
		r.nfa.OutLetters(cur.q, func(l string) {
			if goal >= 0 {
				return
			}
			t, err := alphabet.TupleFromKey(l)
			if err != nil {
				return
			}
			mask := cur.mask
			ok := true
			for track, s := range t {
				if s == alphabet.Pad {
					mask |= 1 << uint(track)
				} else if cur.mask&(1<<uint(track)) != 0 {
					ok = false // resumed after padding: invalid convolution
					break
				}
			}
			if !ok {
				return
			}
			for _, q2 := range r.nfa.Successors(cur.q, l) {
				push(st{q2, mask}, pred{prev: i, letter: l, hasLtr: true})
			}
		})
	}
	if goal < 0 {
		return nil, true
	}
	var rev []string
	for i := goal; preds[i].prev >= 0; i = preds[i].prev {
		if preds[i].hasLtr {
			rev = append(rev, preds[i].letter)
		}
	}
	letters := make([]string, len(rev))
	for i := range rev {
		letters[i] = rev[len(rev)-1-i]
	}
	return r.decodeWitness(letters)
}

func (r *Relation) decodeWitness(letters []string) ([]alphabet.Word, bool) {
	tuples := make([]alphabet.Tuple, len(letters))
	for i, l := range letters {
		t, err := alphabet.TupleFromKey(l)
		if err != nil {
			return nil, true
		}
		tuples[i] = t
	}
	words, err := alphabet.Deconvolve(r.arity, tuples)
	if err != nil {
		return nil, true
	}
	return words, false
}

// Size returns the number of states and transitions of the underlying NFA
// (0, 0 for symbolic universal relations).
func (r *Relation) Size() (states, transitions int) {
	if r.universal {
		return 0, 0
	}
	return r.nfa.NumStates(), r.nfa.NumTransitions()
}

// String renders a short description.
func (r *Relation) String() string {
	n := r.name
	if n == "" {
		n = "rel"
	}
	if r.universal {
		return fmt.Sprintf("%s[arity=%d, universal]", n, r.arity)
	}
	s, tr := r.Size()
	return fmt.Sprintf("%s[arity=%d, states=%d, trans=%d]", n, r.arity, s, tr)
}

// tupleTransitions iterates transitions of an explicit relation NFA from
// state q, decoding letters. Panics on malformed letters (excluded by
// FromNFA).
func tupleTransitions(nfa *automata.NFA[string], q int, f func(t alphabet.Tuple, to int)) {
	nfa.OutLetters(q, func(l string) {
		t, err := alphabet.TupleFromKey(l)
		invariant.NoError(err, "synchro: malformed letter key")
		for _, to := range nfa.Successors(q, l) {
			f(t, to)
		}
	})
}
