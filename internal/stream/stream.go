// Package stream is the composable pull-iterator layer behind streaming
// result enumeration: answer tuples flow through Tuples iterators from
// the lazy Lemma 4.3 sweep up to the paginated /v1/enumerate endpoint,
// so producing the first page of answers costs a fraction of a full
// materialization.
//
// The contract every iterator implements:
//
//   - Next returns the next tuple and true, or (nil, false) when the
//     stream is exhausted or failed. The returned slice is only valid
//     until the next call to Next — callers that retain a tuple copy it.
//   - Err reports the first error encountered; it must be checked after
//     Next returns false (exhaustion and failure look identical at Next).
//   - Close releases everything the iterator holds (govern charges,
//     trace spans, product-search scratch) and is idempotent. Every
//     obtained iterator must be closed on all paths — the streamclose
//     lint analyzer enforces this in the consuming packages.
//
// Combinators compose without goroutines or channels: a pipeline is a
// plain call stack, so cancellation, error propagation, and resource
// release are synchronous and deterministic. Determinism matters beyond
// tidiness — the /v1/enumerate cursor encodes a plain offset, which only
// resumes correctly because every stage enumerates in a reproducible
// order.
package stream

import (
	"context"

	"ecrpq/internal/govern"
	"ecrpq/internal/trace"
)

// Tuples is a pull iterator over integer tuples. See the package comment
// for the Next/Err/Close contract.
type Tuples interface {
	// Next returns the next tuple, or false when the stream is done (or
	// failed — check Err). The slice may be reused by the next call.
	Next() ([]int, bool)
	// Err returns the first error the stream hit, nil on clean exhaustion.
	Err() error
	// Close releases the stream's resources on all paths. Idempotent.
	Close()
}

// Empty returns an iterator with no tuples.
func Empty() Tuples { return &sliceStream{} }

// Once returns an iterator yielding exactly the given tuple (which may
// be empty — the Boolean "yes" answer).
func Once(row []int) Tuples { return &sliceStream{rows: [][]int{row}} }

// FromRows returns an iterator over the given rows in order. The rows
// are not copied.
func FromRows(rows [][]int) Tuples { return &sliceStream{rows: rows} }

type sliceStream struct {
	rows [][]int
	i    int
}

func (s *sliceStream) Next() ([]int, bool) {
	if s.i >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.i]
	s.i++
	return r, true
}

func (s *sliceStream) Err() error { return nil }
func (s *sliceStream) Close()     { s.i = len(s.rows) }

// errStream is a stream that fails immediately — constructors that hit
// an error before producing anything return one so the iterator contract
// (error surfaces through Err after Next=false) stays uniform.
type errStream struct{ err error }

// Fail returns a stream whose first Next reports exhaustion with err.
func Fail(err error) Tuples { return &errStream{err: err} }

func (s *errStream) Next() ([]int, bool) { return nil, false }
func (s *errStream) Err() error          { return s.err }
func (s *errStream) Close()              {}

// Limit passes through at most n tuples, then reports exhaustion and
// closes the source early — the "stop at first witness" primitive is
// Limit(s, 1).
func Limit(src Tuples, n int) Tuples { return &limitStream{src: src, left: n} }

type limitStream struct {
	src  Tuples
	left int
	done bool
}

func (s *limitStream) Next() ([]int, bool) {
	if s.done || s.left <= 0 {
		return nil, false
	}
	row, ok := s.src.Next()
	if !ok {
		s.done = true
		return nil, false
	}
	s.left--
	return row, true
}

func (s *limitStream) Err() error { return s.src.Err() }
func (s *limitStream) Close()     { s.done = true; s.src.Close() }

// Offset discards the first n tuples. Discarded tuples are still
// produced by the source (an offset resume re-does the skipped work);
// the /v1/enumerate cursor accepts that cost in exchange for a stateless
// server.
func Offset(src Tuples, n int) Tuples { return &offsetStream{src: src, skip: n} }

type offsetStream struct {
	src  Tuples
	skip int
}

func (s *offsetStream) Next() ([]int, bool) {
	//ecrpq:bounded each iteration consumes one source tuple and skip strictly decreases
	for s.skip > 0 {
		if _, ok := s.src.Next(); !ok {
			return nil, false
		}
		s.skip--
	}
	return s.src.Next()
}

func (s *offsetStream) Err() error { return s.src.Err() }
func (s *offsetStream) Close()     { s.src.Close() }

// Filter passes through the tuples keep accepts.
func Filter(src Tuples, keep func([]int) bool) Tuples {
	return &filterStream{src: src, keep: keep}
}

type filterStream struct {
	src  Tuples
	keep func([]int) bool
}

func (s *filterStream) Next() ([]int, bool) {
	//ecrpq:bounded each iteration consumes one source tuple; the source is finite
	for {
		row, ok := s.src.Next()
		if !ok {
			return nil, false
		}
		if s.keep(row) {
			return row, true
		}
	}
}

func (s *filterStream) Err() error { return s.src.Err() }
func (s *filterStream) Close()     { s.src.Close() }

// ChargeFunc accounts stream-held bytes: positive deltas charge,
// negative release. It matches cq.ChargeFunc / govern.Meter.Charge so
// the same govern plumbing meters join state and dedup sets.
type ChargeFunc func(deltaBytes int64) error

// dedupEntryBytes approximates one seen-set entry (map overhead plus the
// string key).
const dedupEntryBytes = 64

// Dedup drops tuples already seen, charging the seen set through charge
// (nil disables accounting). First occurrence wins, so a deterministic
// source stays deterministic through Dedup.
func Dedup(src Tuples, charge ChargeFunc) Tuples {
	return &dedupStream{src: src, charge: charge, seen: make(map[string]struct{})}
}

type dedupStream struct {
	src    Tuples
	charge ChargeFunc
	seen   map[string]struct{}
	err    error
}

func (s *dedupStream) Next() ([]int, bool) {
	if s.err != nil {
		return nil, false
	}
	//ecrpq:bounded each iteration consumes one source tuple; the source is finite
	for {
		row, ok := s.src.Next()
		if !ok {
			return nil, false
		}
		k := rowKey(row)
		if _, dup := s.seen[k]; dup {
			continue
		}
		if s.charge != nil {
			if err := s.charge(dedupEntryBytes + int64(len(k))); err != nil {
				s.err = err
				return nil, false
			}
		}
		s.seen[k] = struct{}{}
		return row, true
	}
}

func (s *dedupStream) Err() error {
	if s.err != nil {
		return s.err
	}
	return s.src.Err()
}

func (s *dedupStream) Close() { s.src.Close() }

// Project narrows each tuple to the given column indices, reusing one
// output buffer across calls.
func Project(src Tuples, cols []int) Tuples {
	return &projectStream{src: src, cols: cols, buf: make([]int, len(cols))}
}

type projectStream struct {
	src  Tuples
	cols []int
	buf  []int
}

func (s *projectStream) Next() ([]int, bool) {
	row, ok := s.src.Next()
	if !ok {
		return nil, false
	}
	for i, c := range s.cols {
		s.buf[i] = row[c]
	}
	return s.buf, true
}

func (s *projectStream) Err() error { return s.src.Err() }
func (s *projectStream) Close()     { s.src.Close() }

// Map rewrites each tuple through fn; returning false drops the tuple.
// fn may reuse one output buffer across calls (the Next contract already
// forbids retaining returned slices).
func Map(src Tuples, fn func([]int) ([]int, bool)) Tuples {
	return &mapStream{src: src, fn: fn}
}

type mapStream struct {
	src Tuples
	fn  func([]int) ([]int, bool)
}

func (s *mapStream) Next() ([]int, bool) {
	//ecrpq:bounded each iteration consumes one source tuple; the source is finite
	for {
		row, ok := s.src.Next()
		if !ok {
			return nil, false
		}
		if out, keep := s.fn(row); keep {
			return out, true
		}
	}
}

func (s *mapStream) Err() error { return s.src.Err() }
func (s *mapStream) Close()     { s.src.Close() }

// WithContext aborts the stream with ctx.Err() as soon as ctx is
// cancelled: every Next polls. Downstream of chunky producers this
// bounds cancellation latency to one tuple.
func WithContext(ctx context.Context, src Tuples) Tuples {
	return &ctxStream{ctx: ctx, src: src}
}

type ctxStream struct {
	ctx context.Context
	src Tuples
	err error
}

func (s *ctxStream) Next() ([]int, bool) {
	if s.err != nil {
		return nil, false
	}
	if err := s.ctx.Err(); err != nil {
		s.err = err
		return nil, false
	}
	return s.src.Next()
}

func (s *ctxStream) Err() error {
	if s.err != nil {
		return s.err
	}
	return s.src.Err()
}

func (s *ctxStream) Close() { s.src.Close() }

// OnClose runs fn when the stream is closed (exactly once), after the
// source's own Close. It is how owners of shared resources — the sweep
// source's product-search scratch, a govern reservation — tie their
// release to the stream's lifetime.
func OnClose(src Tuples, fn func()) Tuples {
	return &closeStream{src: src, fn: fn}
}

type closeStream struct {
	src    Tuples
	fn     func()
	closed bool
}

func (s *closeStream) Next() ([]int, bool) { return s.src.Next() }
func (s *closeStream) Err() error          { return s.src.Err() }

func (s *closeStream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.src.Close()
	if s.fn != nil {
		s.fn()
	}
}

// meteredChunkRows is how many tuples a Metered stream passes between
// ledger charges: the govern reservation absorbs one Grow per chunk
// instead of one per row.
const meteredChunkRows = 64

// Metered charges rowBytes per tuple against the meter in chunks of
// meteredChunkRows, and closes the meter (releasing every charged byte)
// when the stream closes. A denial from the ledger surfaces as the
// stream's error — exactly how a mid-Next govern denial reaches the
// server's 429 mapping. Nil meters pass through uncharged.
func Metered(src Tuples, m *govern.Meter, rowBytes int64) Tuples {
	return &meteredStream{src: src, m: m, rowBytes: rowBytes}
}

type meteredStream struct {
	src      Tuples
	m        *govern.Meter
	rowBytes int64
	pending  int // rows produced since the last chunk charge
	err      error
	closed   bool
}

func (s *meteredStream) Next() ([]int, bool) {
	if s.err != nil {
		return nil, false
	}
	if s.pending >= meteredChunkRows {
		if err := s.m.Grow(int64(s.pending) * s.rowBytes); err != nil {
			s.err = err
			return nil, false
		}
		s.pending = 0
	}
	row, ok := s.src.Next()
	if !ok {
		return nil, false
	}
	s.pending++
	return row, true
}

func (s *meteredStream) Err() error {
	if s.err != nil {
		return s.err
	}
	return s.src.Err()
}

func (s *meteredStream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.src.Close()
	s.m.Close()
}

// Spanned wraps the stream's whole lifetime in a trace span: the span
// opens now and ends at Close, carrying the tuple count — so per-stage
// attribution (the A8 experiment's span buckets) keeps working when a
// stage streams instead of materializing. Nil-safe when ctx carries no
// trace.
func Spanned(ctx context.Context, name string, src Tuples) Tuples {
	//ecrpq:ignore spanend -- the span's End is tied to the stream's Close, which streamclose enforces on all paths
	_, sp := trace.StartSpan(ctx, name)
	return &spannedStream{src: src, sp: sp}
}

type spannedStream struct {
	src    Tuples
	sp     *trace.Span
	rows   int64
	closed bool
}

func (s *spannedStream) Next() ([]int, bool) {
	row, ok := s.src.Next()
	if ok {
		s.rows++
	}
	return row, ok
}

func (s *spannedStream) Err() error { return s.src.Err() }

func (s *spannedStream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.src.Close()
	s.sp.SetInt("rows", s.rows)
	s.sp.End()
}

// Collect drains the stream into a slice of copied rows (the iterator's
// reuse contract means FromRows-style aliasing is not safe here), then
// reports the stream's error. It does not close the stream.
func Collect(src Tuples) ([][]int, error) {
	var out [][]int
	//ecrpq:bounded each iteration consumes one source tuple; the source is finite
	for {
		row, ok := src.Next()
		if !ok {
			return out, src.Err()
		}
		out = append(out, append([]int(nil), row...))
	}
}

// rowKey packs a tuple into a map key.
func rowKey(row []int) string {
	buf := make([]byte, 4*len(row))
	for i, v := range row {
		buf[4*i] = byte(v)
		buf[4*i+1] = byte(v >> 8)
		buf[4*i+2] = byte(v >> 16)
		buf[4*i+3] = byte(v >> 24)
	}
	return string(buf)
}
