package stream

// Pipelined joins. Both joins pull lazily from their probe/outer side,
// so downstream early termination (Limit, first-witness) stops upstream
// work immediately; neither spawns goroutines.

// NestedLoop is the pipelined nested-loop join with binding pushdown:
// for every outer tuple it opens an inner stream — the open callback
// sees the outer tuple and is expected to push its bindings down into
// the inner scan — and yields the inner stream's tuples. The outer
// tuple passed to open is only valid until the next outer pull; open
// must copy what it retains.
func NestedLoop(outer Tuples, open func(outerRow []int) (Tuples, error)) Tuples {
	return &nestedLoopStream{outer: outer, open: open}
}

type nestedLoopStream struct {
	outer Tuples
	open  func([]int) (Tuples, error)
	inner Tuples
	err   error
	done  bool
}

func (s *nestedLoopStream) Next() ([]int, bool) {
	if s.done || s.err != nil {
		return nil, false
	}
	//ecrpq:bounded each iteration either yields, consumes one outer tuple, or terminates; both sides are finite
	for {
		if s.inner == nil {
			orow, ok := s.outer.Next()
			if !ok {
				s.done = true
				s.err = s.outer.Err()
				return nil, false
			}
			inner, err := s.open(orow)
			if err != nil {
				s.err = err
				return nil, false
			}
			s.inner = inner
		}
		row, ok := s.inner.Next()
		if ok {
			return row, true
		}
		err := s.inner.Err()
		s.inner.Close()
		s.inner = nil
		if err != nil {
			s.err = err
			return nil, false
		}
	}
}

func (s *nestedLoopStream) Err() error { return s.err }

func (s *nestedLoopStream) Close() {
	if s.inner != nil {
		s.inner.Close()
		s.inner = nil
	}
	s.done = true
	s.outer.Close()
}

// hashRowBytes approximates the buffered cost of one build-side row.
func hashRowBytes(row []int) int64 { return 48 + 16*int64(len(row)) }

// HashJoin equi-joins probe against build on the given key columns and
// yields probe+build concatenations, probe-major so a deterministic
// probe side stays deterministic. The build side is drained and indexed
// on the first pull (charged row by row through charge; nil disables
// accounting); the probe side is pipelined, so early termination only
// pays for the build table. Empty key slices yield the cross product —
// the degenerate case core uses for atoms that share no variables with
// the join prefix, where re-running the sweep per outer tuple would be
// quadratic.
func HashJoin(probe, build Tuples, probeKey, buildKey []int, charge ChargeFunc) Tuples {
	return &hashJoinStream{probe: probe, build: build, pk: probeKey, bk: buildKey, charge: charge}
}

type hashJoinStream struct {
	probe, build Tuples
	pk, bk       []int
	charge       ChargeFunc
	table        map[string][][]int
	matches      [][]int // build rows matching the current probe row
	mi           int
	cur          []int // current probe row (copied)
	buf          []int // reused output buffer
	keyBuf       []int // reused key projection buffer
	err          error
	built        bool
}

func (s *hashJoinStream) buildTable() error {
	s.table = make(map[string][][]int)
	//ecrpq:bounded each iteration consumes one build-side tuple; the build side is finite
	for {
		row, ok := s.build.Next()
		if !ok {
			return s.build.Err()
		}
		if s.charge != nil {
			if err := s.charge(hashRowBytes(row)); err != nil {
				return err
			}
		}
		k := s.key(row, s.bk)
		s.table[k] = append(s.table[k], append([]int(nil), row...))
	}
}

func (s *hashJoinStream) key(row []int, cols []int) string {
	s.keyBuf = s.keyBuf[:0]
	for _, c := range cols {
		s.keyBuf = append(s.keyBuf, row[c])
	}
	return rowKey(s.keyBuf)
}

func (s *hashJoinStream) Next() ([]int, bool) {
	if s.err != nil {
		return nil, false
	}
	if !s.built {
		s.built = true
		if err := s.buildTable(); err != nil {
			s.err = err
			return nil, false
		}
	}
	//ecrpq:bounded each iteration either yields a match or consumes one probe tuple; both sides are finite
	for {
		if s.mi < len(s.matches) {
			b := s.matches[s.mi]
			s.mi++
			s.buf = s.buf[:0]
			s.buf = append(s.buf, s.cur...)
			s.buf = append(s.buf, b...)
			return s.buf, true
		}
		row, ok := s.probe.Next()
		if !ok {
			return nil, false
		}
		s.matches = s.table[s.key(row, s.pk)]
		s.mi = 0
		if len(s.matches) > 0 {
			s.cur = append(s.cur[:0], row...)
		}
	}
}

func (s *hashJoinStream) Err() error {
	if s.err != nil {
		return s.err
	}
	return s.probe.Err()
}

func (s *hashJoinStream) Close() {
	s.probe.Close()
	s.build.Close()
	s.table = nil
	s.matches = nil
}
