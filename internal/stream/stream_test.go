package stream

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ecrpq/internal/govern"
	"ecrpq/internal/trace"
)

func rows(rs ...[]int) [][]int { return rs }

func mustCollect(t *testing.T, s Tuples) [][]int {
	t.Helper()
	defer s.Close()
	out, err := Collect(s)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return out
}

func TestFromRowsLimitOffset(t *testing.T) {
	src := rows([]int{0}, []int{1}, []int{2}, []int{3}, []int{4})
	got := mustCollect(t, Limit(Offset(FromRows(src), 1), 2))
	want := rows([]int{1}, []int{2})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if n := len(mustCollect(t, Offset(FromRows(src), 99))); n != 0 {
		t.Fatalf("offset past end yielded %d rows", n)
	}
	if n := len(mustCollect(t, Limit(FromRows(src), 0))); n != 0 {
		t.Fatalf("limit 0 yielded %d rows", n)
	}
}

func TestFilterProjectDedup(t *testing.T) {
	src := rows([]int{1, 10}, []int{2, 20}, []int{1, 30}, []int{3, 10})
	got := mustCollect(t, Dedup(Project(FromRows(src), []int{0}), nil))
	want := rows([]int{1}, []int{2}, []int{3})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dedup-project got %v want %v", got, want)
	}
	got = mustCollect(t, Filter(FromRows(src), func(r []int) bool { return r[1] == 10 }))
	want = rows([]int{1, 10}, []int{3, 10})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("filter got %v want %v", got, want)
	}
}

func TestDedupChargeDenial(t *testing.T) {
	boom := errors.New("denied")
	n := 0
	charge := func(int64) error {
		n++
		if n > 1 {
			return boom
		}
		return nil
	}
	s := Dedup(FromRows(rows([]int{1}, []int{2})), charge)
	defer s.Close()
	if _, ok := s.Next(); !ok {
		t.Fatal("first row should pass")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("second row should be denied")
	}
	if !errors.Is(s.Err(), boom) {
		t.Fatalf("Err = %v, want denial", s.Err())
	}
}

func TestWithContextCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := WithContext(ctx, FromRows(rows([]int{1}, []int{2})))
	defer s.Close()
	if _, ok := s.Next(); !ok {
		t.Fatal("first Next should succeed")
	}
	cancel()
	if _, ok := s.Next(); ok {
		t.Fatal("Next after cancel should fail")
	}
	if !errors.Is(s.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", s.Err())
	}
}

func TestOnCloseRunsOnce(t *testing.T) {
	n := 0
	s := OnClose(Empty(), func() { n++ })
	s.Close()
	s.Close()
	if n != 1 {
		t.Fatalf("close hook ran %d times, want 1", n)
	}
}

func TestFailSurfacesError(t *testing.T) {
	boom := errors.New("boom")
	s := Fail(boom)
	defer s.Close()
	if _, ok := s.Next(); ok {
		t.Fatal("Fail yielded a row")
	}
	if !errors.Is(s.Err(), boom) {
		t.Fatalf("Err = %v", s.Err())
	}
}

func TestMeteredChargesAndReleases(t *testing.T) {
	broker := govern.NewBroker(0) // account-only
	res, err := broker.Reserve(0)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	defer res.Release()

	src := make([][]int, 3*meteredChunkRows)
	for i := range src {
		src[i] = []int{i}
	}
	s := Metered(FromRows(src), res.NewMeter(), 10)
	if _, err := Collect(s); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	// Chunked accounting lags by up to one chunk, but at least the first
	// two full chunks must have been charged by the time the third is in
	// flight.
	if got := res.Used(); got < 2*meteredChunkRows*10 {
		t.Fatalf("mid-stream charge = %d, want >= %d", got, 2*meteredChunkRows*10)
	}
	s.Close()
	if got := res.Used(); got != 0 {
		t.Fatalf("after Close reservation holds %d bytes, want 0", got)
	}
}

func TestMeteredDenialMidNext(t *testing.T) {
	broker := govern.NewBroker(1024) // tiny hard budget
	res, err := broker.Reserve(0)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	defer res.Release()

	src := make([][]int, 10*meteredChunkRows)
	for i := range src {
		src[i] = []int{i}
	}
	s := Metered(FromRows(src), res.NewMeter(), 1<<20)
	_, cerr := Collect(s)
	if !errors.Is(cerr, govern.ErrResourceExhausted) {
		t.Fatalf("Collect err = %v, want ErrResourceExhausted", cerr)
	}
	if !errors.Is(s.Err(), govern.ErrResourceExhausted) {
		t.Fatalf("Err = %v, want ErrResourceExhausted", s.Err())
	}
	s.Close()
	if got := broker.Reserved(); got != 0 {
		t.Fatalf("broker holds %d bytes after Close, want 0", got)
	}
}

func TestSpannedRecordsRows(t *testing.T) {
	tr := trace.New("test")
	ctx := trace.NewContext(context.Background(), tr)
	s := Spanned(ctx, "core/sweep", FromRows(rows([]int{1}, []int{2})))
	if _, err := Collect(s); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	s.Close()
	snap := tr.Snapshot()
	found := false
	for _, sp := range snap.Spans {
		if sp.Name == "core/sweep" {
			found = true
			if rows, _ := sp.Attrs["rows"].(int64); rows != 2 {
				t.Fatalf("span rows = %v, want 2", sp.Attrs["rows"])
			}
		}
	}
	if !found {
		t.Fatal("no core/sweep span recorded")
	}
}

func TestNestedLoopPushdown(t *testing.T) {
	outer := FromRows(rows([]int{1}, []int{2}, []int{3}))
	opened := 0
	s := NestedLoop(outer, func(o []int) (Tuples, error) {
		opened++
		if o[0] == 2 {
			return Empty(), nil // no matches for this binding
		}
		return FromRows(rows([]int{o[0], o[0] * 10}, []int{o[0], o[0] * 100})), nil
	})
	got := mustCollect(t, s)
	want := rows([]int{1, 10}, []int{1, 100}, []int{3, 30}, []int{3, 300})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if opened != 3 {
		t.Fatalf("opened %d inner streams, want 3", opened)
	}
}

func TestNestedLoopEarlyCloseClosesInner(t *testing.T) {
	innerClosed := 0
	s := NestedLoop(FromRows(rows([]int{1})), func([]int) (Tuples, error) {
		return OnClose(FromRows(rows([]int{1}, []int{2})), func() { innerClosed++ }), nil
	})
	if _, ok := s.Next(); !ok {
		t.Fatal("expected a row")
	}
	s.Close() // abandons mid-inner
	if innerClosed != 1 {
		t.Fatalf("inner closed %d times, want 1", innerClosed)
	}
}

func TestNestedLoopOpenError(t *testing.T) {
	boom := errors.New("open failed")
	s := NestedLoop(FromRows(rows([]int{1})), func([]int) (Tuples, error) { return nil, boom })
	defer s.Close()
	if _, ok := s.Next(); ok {
		t.Fatal("expected failure")
	}
	if !errors.Is(s.Err(), boom) {
		t.Fatalf("Err = %v", s.Err())
	}
}

func TestHashJoinKeyed(t *testing.T) {
	probe := FromRows(rows([]int{1, 7}, []int{2, 8}, []int{1, 9}))
	build := FromRows(rows([]int{10, 1}, []int{20, 1}, []int{30, 2}))
	// join on probe[0] == build[1]
	s := HashJoin(probe, build, []int{0}, []int{1}, nil)
	got := mustCollect(t, s)
	want := rows(
		[]int{1, 7, 10, 1}, []int{1, 7, 20, 1},
		[]int{2, 8, 30, 2},
		[]int{1, 9, 10, 1}, []int{1, 9, 20, 1},
	)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestHashJoinCrossProduct(t *testing.T) {
	s := HashJoin(FromRows(rows([]int{1}, []int{2})), FromRows(rows([]int{10}, []int{20})), nil, nil, nil)
	got := mustCollect(t, s)
	want := rows([]int{1, 10}, []int{1, 20}, []int{2, 10}, []int{2, 20})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestHashJoinChargeDenial(t *testing.T) {
	boom := errors.New("denied")
	s := HashJoin(FromRows(rows([]int{1})), FromRows(rows([]int{1})), []int{0}, []int{0},
		func(int64) error { return boom })
	defer s.Close()
	if _, ok := s.Next(); ok {
		t.Fatal("expected denial before first row")
	}
	if !errors.Is(s.Err(), boom) {
		t.Fatalf("Err = %v", s.Err())
	}
}

func TestHashJoinEarlyTermination(t *testing.T) {
	pulled := 0
	probe := Filter(FromRows(rows([]int{1}, []int{1}, []int{1})), func([]int) bool { pulled++; return true })
	s := Limit(HashJoin(probe, FromRows(rows([]int{1})), []int{0}, []int{0}, nil), 1)
	got := mustCollect(t, s)
	if len(got) != 1 {
		t.Fatalf("got %d rows, want 1", len(got))
	}
	if pulled != 1 {
		t.Fatalf("probe side pulled %d times, want 1", pulled)
	}
}
