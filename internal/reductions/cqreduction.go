package reductions

import (
	"fmt"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
	"ecrpq/internal/cq"
	"ecrpq/internal/graphdb"
	"ecrpq/internal/query"
	"ecrpq/internal/synchro"
)

// SplitAtom describes one first-level edge of the target 2L graph in
// "collapse form" (Section 5.2): the pair of binary CQ atoms
// R(X, y_c) ∧ Rp(y_c, Xp) obtained by splitting the edge X → Xp at its
// component vertex y_c.
type SplitAtom struct {
	X, R, Rp, Xp string
}

// SplitComponent groups the split atoms sharing one component variable y_c —
// i.e. one connected component of the target abstraction's G^rel.
type SplitComponent struct {
	Paths []SplitAtom
}

// CQToECRPQ implements the FPT reduction of Lemma 5.3: given a binary
// relational structure and a conjunctive query in collapse form (a list of
// components, each with atoms R_i(x_i, y_c) ∧ R'_i(y_c, x'_i) over a shared
// component variable), it produces a graph database D̂ and an ECRPQ q_G such
// that
//
//	D̂ ⊨ q_G  ⇔  D ⊨ q.
//
// D̂ extends D's "edge view" (one labelled edge per binary tuple) with a
// simple {0,1}-labelled cycle per vertex reading that vertex's binary index,
// and each component becomes one synchronous relation atom
// { (R_1·w·R'_1, ..., R_r·w·R'_r) : w ∈ {0,1}+ } forcing all of the
// component's paths through the same middle vertex (identified by w).
func CQToECRPQ(st *cq.Structure, comps []SplitComponent) (*graphdb.DB, *query.Query, error) {
	if st.Domain < 1 {
		return nil, nil, fmt.Errorf("reductions: empty domain")
	}
	// Alphabet: one symbol per relation name, plus 0 and 1.
	names := st.RelationNames()
	symNames := append(append([]string(nil), names...), "0", "1")
	a, err := alphabet.New(symNames...)
	if err != nil {
		return nil, nil, err
	}
	zero, _ := a.Lookup("0")
	one, _ := a.Lookup("1")
	relSym := make(map[string]alphabet.Symbol, len(names))
	for _, n := range names {
		s, _ := a.Lookup(n)
		relSym[n] = s
	}

	db := graphdb.New(a)
	for v := 0; v < st.Domain; v++ {
		db.MustAddVertex(fmt.Sprintf("d%d", v))
	}
	for _, n := range names {
		r := st.Relation(n)
		if r.Arity != 2 {
			return nil, nil, fmt.Errorf("reductions: relation %q has arity %d; Lemma 5.3 needs binary structures", n, r.Arity)
		}
		for _, t := range r.Tuples {
			db.MustAddEdge(t[0], relSym[n], t[1])
		}
	}
	// Binary-index cycles: vertex i gets a fresh simple cycle reading the
	// n'-bit encoding of i (n' ≥ 1).
	bits := 1
	for 1<<bits < st.Domain {
		bits++
	}
	enc := func(i int) []alphabet.Symbol {
		out := make([]alphabet.Symbol, bits)
		for b := 0; b < bits; b++ {
			if i&(1<<(bits-1-b)) != 0 {
				out[b] = one
			} else {
				out[b] = zero
			}
		}
		return out
	}
	for v := 0; v < st.Domain; v++ {
		word := enc(v)
		cur := v
		for b := 0; b < bits; b++ {
			var next int
			if b == bits-1 {
				next = v
			} else {
				next = db.MustAddVertex("")
			}
			db.MustAddEdge(cur, word[b], next)
			cur = next
		}
	}

	// Query: per component, one relation atom over its paths.
	b := query.NewBuilder(a)
	pathSeq := 0
	for ci, comp := range comps {
		if len(comp.Paths) == 0 {
			return nil, nil, fmt.Errorf("reductions: component %d has no paths", ci)
		}
		var pvs []string
		var firsts, lasts []alphabet.Symbol
		for _, sa := range comp.Paths {
			r1, ok1 := relSym[sa.R]
			r2, ok2 := relSym[sa.Rp]
			if !ok1 || !ok2 {
				return nil, nil, fmt.Errorf("reductions: unknown relation in component %d", ci)
			}
			pathSeq++
			pv := fmt.Sprintf("pi%d", pathSeq)
			pvs = append(pvs, pv)
			b.Reach(sa.X, pv, sa.Xp)
			firsts = append(firsts, r1)
			lasts = append(lasts, r2)
		}
		rel, err := middleWordRelation(a, firsts, lasts, zero, one)
		if err != nil {
			return nil, nil, err
		}
		b.Rel(rel.WithName(fmt.Sprintf("comp%d", ci)), pvs...)
	}
	q, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return db, q, nil
}

// middleWordRelation builds { (first_1·w·last_1, ..., first_r·w·last_r) :
// w ∈ {0,1}+ }.
func middleWordRelation(a *alphabet.Alphabet, firsts, lasts []alphabet.Symbol, zero, one alphabet.Symbol) (*synchro.Relation, error) {
	r := len(firsts)
	nfa := automata.NewNFA[string](4)
	nfa.SetStart(0, true)
	nfa.SetAccept(3, true)
	nfa.AddTransition(0, alphabet.Tuple(firsts).Key(), 1)
	all := func(s alphabet.Symbol) string {
		t := make(alphabet.Tuple, r)
		for i := range t {
			t[i] = s
		}
		return t.Key()
	}
	nfa.AddTransition(1, all(zero), 2)
	nfa.AddTransition(1, all(one), 2)
	nfa.AddTransition(2, all(zero), 2)
	nfa.AddTransition(2, all(one), 2)
	nfa.AddTransition(2, alphabet.Tuple(lasts).Key(), 3)
	return synchro.FromNFA(a, r, nfa)
}

// SubdivideCQ converts an arbitrary binary CQ into collapse form over an
// adjusted structure: every atom R(x, x') becomes its own component with the
// split pair R→(x, m) ∧ R←(m, x'), where m ranges over fresh midpoint
// elements, one per tuple of R. Satisfiability is preserved, and the
// collapse multigraph is the subdivision of the query's multigraph (which
// preserves treewidth for tw ≥ 2 — the regime of the W[1] lower bound).
func SubdivideCQ(st *cq.Structure, q *cq.Query) (*cq.Structure, []SplitComponent, error) {
	if err := q.Validate(st); err != nil {
		return nil, nil, err
	}
	// Midpoints: one per (relation, tuple).
	type key struct {
		rel string
		idx int
	}
	names := st.RelationNames()
	total := st.Domain
	mid := make(map[key]int)
	for _, n := range names {
		r := st.Relation(n)
		if r.Arity != 2 {
			return nil, nil, fmt.Errorf("reductions: relation %q not binary", n)
		}
		for i := range r.Tuples {
			mid[key{n, i}] = total
			total++
		}
	}
	out := cq.NewStructure(total)
	for _, n := range names {
		r := st.Relation(n)
		if err := out.AddRelation(n+"->", 2); err != nil {
			return nil, nil, err
		}
		if err := out.AddRelation(n+"<-", 2); err != nil {
			return nil, nil, err
		}
		for i, t := range r.Tuples {
			m := mid[key{n, i}]
			out.MustAddTuple(n+"->", t[0], m)
			out.MustAddTuple(n+"<-", m, t[1])
		}
	}
	var comps []SplitComponent
	for _, at := range q.Atoms {
		comps = append(comps, SplitComponent{Paths: []SplitAtom{{
			X: at.Args[0], R: at.Rel + "->", Rp: at.Rel + "<-", Xp: at.Args[1],
		}}})
	}
	return out, comps, nil
}
