// Package reductions implements the paper's lower-bound constructions:
//
//   - INE → ECRPQ (Lemma 5.1, cases 1 and 2, plus the "long chain" variant
//     used in Lemma 5.4(a)): regular-language intersection non-emptiness
//     encoded as ECRPQ evaluation, the source of PSPACE- and XNL-hardness.
//
//   - CQ_bin(C_collapse) → ECRPQ (Lemma 5.3): conjunctive-query evaluation
//     encoded as ECRPQ evaluation via binary-counter cycles, the source of
//     W[1]-hardness.
//
// Every construction returns concrete (database, query) pairs whose
// satisfiability provably matches the source instance; the test suite
// round-trips witnesses to confirm it.
package reductions

import (
	"fmt"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
	"ecrpq/internal/graphdb"
	"ecrpq/internal/query"
	"ecrpq/internal/synchro"
)

// INEInstance is an intersection-non-emptiness instance: automata over a
// shared alphabet. The question is whether ∩ L(A_i) ≠ ∅.
type INEInstance struct {
	Alphabet *alphabet.Alphabet
	Automata []*automata.NFA[alphabet.Symbol]
}

// Solve decides the INE instance directly by automaton products (the
// baseline the reductions are checked against), returning a witness word.
func (in *INEInstance) Solve() (alphabet.Word, bool) {
	if len(in.Automata) == 0 {
		return alphabet.Word{}, true
	}
	prod := in.Automata[0]
	for _, a := range in.Automata[1:] {
		prod = prod.Intersect(a).Trim()
	}
	w, empty := prod.IsEmpty()
	if empty {
		return nil, false
	}
	return alphabet.Word(w), true
}

// BigHyperedge implements Lemma 5.1 case (1) (shape also used in Lemma
// 5.4(b)): one relation atom of arity n ties all path variables into a
// single connected component. The i-th word must be $·u·#^i·$ for a common
// u, and the database is the disjoint union (except for a shared vertex s)
// of gadgets built from the automata's transition graphs, so that path i is
// forced through gadget i. The resulting query has cc_vertex = n and
// cc_hedge = 1.
//
// D ⊨ q  ⇔  ∩ L(A_i) ≠ ∅.
func BigHyperedge(in *INEInstance) (*graphdb.DB, *query.Query, error) {
	n := len(in.Automata)
	if n == 0 {
		return nil, nil, fmt.Errorf("reductions: empty INE instance")
	}
	ext, err := in.Alphabet.Extend("$", "#")
	if err != nil {
		return nil, nil, err
	}
	dollar, _ := ext.Lookup("$")
	hash, _ := ext.Lookup("#")

	db := graphdb.New(ext)
	s := db.MustAddVertex("s")
	for i, a := range in.Automata {
		clean := a.RemoveEps().Trim()
		if clean.NumStates() == 0 {
			// Empty language: intersection empty; encode with an unreachable
			// gadget (no edges from s).
			continue
		}
		off := db.NumVertices()
		for q := 0; q < clean.NumStates(); q++ {
			db.MustAddVertex("")
		}
		clean.Transitions(func(p int, sym alphabet.Symbol, q int) {
			db.MustAddEdge(off+p, sym, off+q)
		})
		for _, q := range clean.StartStates() {
			db.MustAddEdge(s, dollar, off+q)
		}
		// Shared #-chain of length i+1, then $ back to s.
		chain := make([]int, i+1)
		for k := range chain {
			chain[k] = db.MustAddVertex("")
		}
		for _, q := range clean.AcceptStates() {
			db.MustAddEdge(off+q, hash, chain[0])
		}
		for k := 0; k+1 < len(chain); k++ {
			db.MustAddEdge(chain[k], hash, chain[k+1])
		}
		db.MustAddEdge(chain[len(chain)-1], dollar, s)
	}

	rel, err := staircaseRelation(ext, n, dollar, hash)
	if err != nil {
		return nil, nil, err
	}
	b := query.NewBuilder(ext)
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("pi%d", i+1)
		b.Reach("x", paths[i], "x")
	}
	b.Rel(rel, paths...)
	q, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return db, q, nil
}

// staircaseRelation builds the synchronous relation of all n-tuples
// ($·u·#^1·$, $·u·#^2·$, ..., $·u·#^n·$) for u ∈ A* — the paper's
// polynomial-size NFA from the proof of Lemma 5.1 case (1).
func staircaseRelation(ext *alphabet.Alphabet, n int, dollar, hash alphabet.Symbol) (*synchro.Relation, error) {
	// Base symbols of the original alphabet (everything except $ and #,
	// which were appended last).
	var base []alphabet.Symbol
	for _, s := range ext.Symbols() {
		if s != dollar && s != hash {
			base = append(base, s)
		}
	}
	nfa := automata.NewNFA[string](0)
	q0 := nfa.AddState()
	q1 := nfa.AddState()
	nfa.SetStart(q0, true)
	all := func(sym alphabet.Symbol) alphabet.Tuple {
		t := make(alphabet.Tuple, n)
		for i := range t {
			t[i] = sym
		}
		return t
	}
	nfa.AddTransition(q0, all(dollar).Key(), q1)
	for _, a := range base {
		nfa.AddTransition(q1, all(a).Key(), q1)
	}
	// Staircase: after the common u, at suffix step t (1-based, t = 1..n+1)
	// track i reads: # if t ≤ i; $ if t = i+1; ⊥ if t > i+1.
	cur := q1
	for t := 1; t <= n+1; t++ {
		next := nfa.AddState()
		letter := make(alphabet.Tuple, n)
		for i := 1; i <= n; i++ {
			switch {
			case t <= i:
				letter[i-1] = hash
			case t == i+1:
				letter[i-1] = dollar
			default:
				letter[i-1] = alphabet.Pad
			}
		}
		nfa.AddTransition(cur, letter.Key(), next)
		cur = next
	}
	nfa.SetAccept(cur, true)
	return synchro.FromNFA(ext, n, nfa)
}

// SharedVariable implements Lemma 5.1 case (2): one path variable π carries
// n unary relation atoms L_i(π); the database is a single vertex with one
// self-loop per alphabet symbol. The query's abstraction has a single
// first-level edge incident to n hyperedges (cc_hedge = n, cc_vertex = 1).
//
// D ⊨ q  ⇔  ∩ L(A_i) ≠ ∅.
func SharedVariable(in *INEInstance) (*graphdb.DB, *query.Query, error) {
	if len(in.Automata) == 0 {
		return nil, nil, fmt.Errorf("reductions: empty INE instance")
	}
	db := loopDB(in.Alphabet)
	b := query.NewBuilder(in.Alphabet)
	b.Reach("x", "pi", "x")
	for i, a := range in.Automata {
		b.Rel(synchro.Lift(in.Alphabet, a).WithName(fmt.Sprintf("L%d", i+1)), "pi")
	}
	q, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return db, q, nil
}

// Chain implements the "long path" shape from the proof of Lemma 5.4(a):
// path variables π_1, ..., π_n chained by binary equality atoms
// eq(π_i, π_{i+1}), each additionally constrained by L_i(π_i), over the
// single-vertex loop database. The abstraction's big component has n
// first-level edges but every hyperedge has size ≤ 2.
//
// D ⊨ q  ⇔  ∩ L(A_i) ≠ ∅.
func Chain(in *INEInstance) (*graphdb.DB, *query.Query, error) {
	n := len(in.Automata)
	if n == 0 {
		return nil, nil, fmt.Errorf("reductions: empty INE instance")
	}
	db := loopDB(in.Alphabet)
	b := query.NewBuilder(in.Alphabet)
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("pi%d", i+1)
		b.Reach("x", paths[i], "x")
	}
	for i, a := range in.Automata {
		b.Rel(synchro.Lift(in.Alphabet, a).WithName(fmt.Sprintf("L%d", i+1)), paths[i])
	}
	for i := 0; i+1 < n; i++ {
		b.Rel(synchro.Equality(in.Alphabet, 2), paths[i], paths[i+1])
	}
	q, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return db, q, nil
}

// loopDB is the one-vertex database with a self-loop per symbol (every word
// is a path label).
func loopDB(a *alphabet.Alphabet) *graphdb.DB {
	db := graphdb.New(a)
	v := db.MustAddVertex("v")
	for _, s := range a.Symbols() {
		db.MustAddEdge(v, s, v)
	}
	return db
}
