package reductions

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
	"ecrpq/internal/core"
	"ecrpq/internal/cq"
	"ecrpq/internal/query"
	"ecrpq/internal/rex"
	"ecrpq/internal/twolevel"
)

// ineFromExprs builds an INE instance from regular expressions.
func ineFromExprs(t *testing.T, a *alphabet.Alphabet, exprs ...string) *INEInstance {
	t.Helper()
	in := &INEInstance{Alphabet: a}
	for _, e := range exprs {
		in.Automata = append(in.Automata, rex.MustCompileString(a, e))
	}
	return in
}

func TestSolveDirect(t *testing.T) {
	a := alphabet.Lower(2)
	in := ineFromExprs(t, a, "a*b", "(a|b)*b", "ab|b")
	w, ok := in.Solve()
	if !ok {
		t.Fatal("intersection should be non-empty (b)")
	}
	for _, atm := range in.Automata {
		if !atm.Accepts(w) {
			t.Error("witness not accepted by all automata")
		}
	}
	in2 := ineFromExprs(t, a, "a+", "b+")
	if _, ok := in2.Solve(); ok {
		t.Error("a+ ∩ b+ should be empty")
	}
}

func TestBigHyperedgeReduction(t *testing.T) {
	a := alphabet.Lower(2)
	cases := []struct {
		exprs []string
		want  bool
	}{
		{[]string{"a*b"}, true},
		{[]string{"a*b", "(a|b)*b"}, true},
		{[]string{"a*b", "b*"}, true}, // b ∈ both
		{[]string{"a+", "b+"}, false},
		{[]string{"a*b", "(a|b)*a"}, false},
		{[]string{"ab*", "a*b", "(a|b)(a|b)"}, true}, // ab
		{[]string{"a", "aa"}, false},
	}
	for _, c := range cases {
		in := ineFromExprs(t, a, c.exprs...)
		db, q, err := BigHyperedge(in)
		if err != nil {
			t.Fatalf("%v: %v", c.exprs, err)
		}
		res, err := core.Evaluate(db, q, core.Options{Strategy: core.Generic})
		if err != nil {
			t.Fatalf("%v: %v", c.exprs, err)
		}
		if res.Sat != c.want {
			t.Errorf("BigHyperedge(%v) sat=%v, want %v", c.exprs, res.Sat, c.want)
		}
		if res.Sat {
			if err := core.VerifyWitness(db, q, res); err != nil {
				t.Errorf("%v: witness: %v", c.exprs, err)
			}
			// The witness paths' labels must embed a common word accepted by
			// all automata: strip $ prefix/suffix and trailing #s of track 1.
			p1 := res.Paths["pi1"]
			lbl := p1.Label()
			if len(lbl) < 3 {
				t.Errorf("%v: witness label too short: %v", c.exprs, lbl)
				continue
			}
			u := lbl[1 : len(lbl)-2] // $ u # $
			uw := make(alphabet.Word, len(u))
			copy(uw, u)
			for _, atm := range in.Automata {
				if !atm.Accepts(uw) {
					t.Errorf("%v: extracted word %v not in all languages", c.exprs, uw)
				}
			}
		}
	}
}

func TestBigHyperedgeMeasures(t *testing.T) {
	a := alphabet.Lower(2)
	in := ineFromExprs(t, a, "a*", "b*", "(a|b)*", "a*b*")
	_, q, err := BigHyperedge(in)
	if err != nil {
		t.Fatal(err)
	}
	m := twolevel.QueryMeasures(q)
	if m.CCVertex != 4 || m.CCHedge != 1 {
		t.Errorf("measures = %+v, want cc_vertex=4 cc_hedge=1", m)
	}
}

func TestSharedVariableReduction(t *testing.T) {
	a := alphabet.Lower(2)
	cases := []struct {
		exprs []string
		want  bool
	}{
		{[]string{"a*b", "(a|b)*b", "ab|b"}, true},
		{[]string{"a+", "b+"}, false},
		{[]string{"a*", "a*a", "aaa*"}, true},
	}
	for _, c := range cases {
		in := ineFromExprs(t, a, c.exprs...)
		db, q, err := SharedVariable(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Evaluate(db, q, core.Options{Strategy: core.Generic})
		if err != nil {
			t.Fatal(err)
		}
		if res.Sat != c.want {
			t.Errorf("SharedVariable(%v) = %v, want %v", c.exprs, res.Sat, c.want)
		}
		if res.Sat {
			if err := core.VerifyWitness(db, q, res); err != nil {
				t.Errorf("witness: %v", err)
			}
			// The single path's label is the witness word itself.
			w := res.Paths["pi"].Label()
			for _, atm := range in.Automata {
				if !atm.Accepts(w) {
					t.Errorf("extracted %v not accepted", w)
				}
			}
		}
	}
	m := twolevel.QueryMeasures(mustQuery(t, a, []string{"a*", "b*", "a|b"}))
	if m.CCHedge != 3 || m.CCVertex != 1 {
		t.Errorf("shared-variable measures = %+v", m)
	}
}

func mustQuery(t *testing.T, a *alphabet.Alphabet, exprs []string) *query.Query {
	t.Helper()
	in := ineFromExprs(t, a, exprs...)
	_, q, err := SharedVariable(in)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestChainReduction(t *testing.T) {
	a := alphabet.Lower(2)
	cases := []struct {
		exprs []string
		want  bool
	}{
		{[]string{"a*b", "(a|b)*b"}, true},
		{[]string{"a+", "b+"}, false},
		{[]string{"a*b", "(a|b)*b", "ab*|b"}, true},
	}
	for _, c := range cases {
		in := ineFromExprs(t, a, c.exprs...)
		db, q, err := Chain(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Evaluate(db, q, core.Options{Strategy: core.Generic})
		if err != nil {
			t.Fatal(err)
		}
		if res.Sat != c.want {
			t.Errorf("Chain(%v) = %v, want %v", c.exprs, res.Sat, c.want)
		}
	}
	// Measures: big component with n tracks, hyperedges of size ≤ 2.
	in := ineFromExprs(t, a, "a*", "b*", "(a|b)*", ".*")
	_, q, _ := Chain(in)
	m := twolevel.QueryMeasures(q)
	if m.CCVertex != 4 {
		t.Errorf("chain cc_vertex = %d, want 4", m.CCVertex)
	}
}

func TestINEReductionsAgreeProperty(t *testing.T) {
	a := alphabet.Lower(2)
	exprs := []string{"a*", "b*", "a*b", "(a|b)*", "ab*", "b+", "(ab)*", "a?b?"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		var chosen []string
		for i := 0; i < n; i++ {
			chosen = append(chosen, exprs[rng.Intn(len(exprs))])
		}
		in := ineFromExprs(t, a, chosen...)
		_, want := in.Solve()

		db1, q1, err := BigHyperedge(in)
		if err != nil {
			return false
		}
		r1, err := core.Evaluate(db1, q1, core.Options{Strategy: core.Generic})
		if err != nil || r1.Sat != want {
			t.Logf("seed %d exprs %v: BigHyperedge=%v want=%v err=%v", seed, chosen, r1 != nil && r1.Sat, want, err)
			return false
		}
		db2, q2, err := SharedVariable(in)
		if err != nil {
			return false
		}
		r2, err := core.Evaluate(db2, q2, core.Options{Strategy: core.Generic})
		if err != nil || r2.Sat != want {
			return false
		}
		db3, q3, err := Chain(in)
		if err != nil {
			return false
		}
		r3, err := core.Evaluate(db3, q3, core.Options{Strategy: core.Generic})
		if err != nil || r3.Sat != want {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEmptyINEInstance(t *testing.T) {
	a := alphabet.Lower(2)
	in := &INEInstance{Alphabet: a}
	if _, _, err := BigHyperedge(in); err == nil {
		t.Error("empty instance should error")
	}
	if _, _, err := SharedVariable(in); err == nil {
		t.Error("empty instance should error")
	}
	if _, _, err := Chain(in); err == nil {
		t.Error("empty instance should error")
	}
}

func TestEmptyLanguageMember(t *testing.T) {
	a := alphabet.Lower(2)
	// One automaton with empty language.
	empty := automata.NewNFA[alphabet.Symbol](1)
	empty.SetStart(0, true) // no accepting states
	in := &INEInstance{Alphabet: a, Automata: []*automata.NFA[alphabet.Symbol]{
		rex.MustCompileString(a, "a*"), empty,
	}}
	if _, ok := in.Solve(); ok {
		t.Fatal("intersection with ∅ should be empty")
	}
	db, q, err := BigHyperedge(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Evaluate(db, q, core.Options{Strategy: core.Generic})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sat {
		t.Error("reduction should be unsatisfiable")
	}
}

// --- Lemma 5.3 ---

// triangleCQ: does the structure contain a directed triangle?
func triangleCQ() *cq.Query {
	return &cq.Query{Atoms: []cq.Atom{
		{Rel: "E", Args: []string{"x", "y"}},
		{Rel: "E", Args: []string{"y", "z"}},
		{Rel: "E", Args: []string{"z", "x"}},
	}}
}

func structureWithEdges(n int, edges [][2]int) *cq.Structure {
	s := cq.NewStructure(n)
	if err := s.AddRelation("E", 2); err != nil {
		panic(err)
	}
	for _, e := range edges {
		s.MustAddTuple("E", e[0], e[1])
	}
	return s
}

func TestCQToECRPQTriangle(t *testing.T) {
	withTriangle := structureWithEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	noTriangle := structureWithEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	for _, tc := range []struct {
		st   *cq.Structure
		want bool
	}{{withTriangle, true}, {noTriangle, false}} {
		sub, comps, err := SubdivideCQ(tc.st, triangleCQ())
		if err != nil {
			t.Fatal(err)
		}
		// Sanity: subdivided CQ matches original satisfiability.
		splitQ := splitFormQuery(comps)
		_, subSat, err := cq.EvalBacktrack(sub, splitQ)
		if err != nil {
			t.Fatal(err)
		}
		if subSat != tc.want {
			t.Fatalf("subdivision changed satisfiability: %v want %v", subSat, tc.want)
		}
		db, q, err := CQToECRPQ(sub, comps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Evaluate(db, q, core.Options{Strategy: core.Generic})
		if err != nil {
			t.Fatal(err)
		}
		if res.Sat != tc.want {
			t.Errorf("CQToECRPQ triangle = %v, want %v", res.Sat, tc.want)
		}
		if res.Sat {
			if err := core.VerifyWitness(db, q, res); err != nil {
				t.Errorf("witness: %v", err)
			}
		}
	}
}

// splitFormQuery converts SplitComponents back to a plain CQ (for the
// sanity cross-check).
func splitFormQuery(comps []SplitComponent) *cq.Query {
	q := &cq.Query{}
	for ci, c := range comps {
		yc := "y_" + string(rune('A'+ci))
		for _, p := range c.Paths {
			q.Atoms = append(q.Atoms,
				cq.Atom{Rel: p.R, Args: []string{p.X, yc}},
				cq.Atom{Rel: p.Rp, Args: []string{yc, p.Xp}},
			)
		}
	}
	return q
}

func TestCQToECRPQMultiPathComponent(t *testing.T) {
	// One component with two paths: R(x, y_c) ∧ R'(y_c, x') and
	// S(z, y_c) ∧ S'(y_c, z') — forces both paths through the same middle.
	st := cq.NewStructure(3)
	for _, n := range []string{"R", "Rp", "S", "Sp"} {
		st.AddRelation(n, 2)
	}
	// Middle vertex 1 works for both; middle vertex 2 only for R.
	st.MustAddTuple("R", 0, 1)
	st.MustAddTuple("Rp", 1, 2)
	st.MustAddTuple("R", 0, 2)
	st.MustAddTuple("S", 2, 1)
	st.MustAddTuple("Sp", 1, 0)
	comps := []SplitComponent{{Paths: []SplitAtom{
		{X: "x", R: "R", Rp: "Rp", Xp: "xp"},
		{X: "z", R: "S", Rp: "Sp", Xp: "zp"},
	}}}
	db, q, err := CQToECRPQ(st, comps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Evaluate(db, q, core.Options{Strategy: core.Generic})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sat {
		t.Fatal("shared middle vertex 1 exists")
	}
	if err := core.VerifyWitness(db, q, res); err != nil {
		t.Fatal(err)
	}
	// Both witness paths must pass through domain vertex 1 after their first
	// edge: the middle word identifies vertex 1.
	p1 := res.Paths["pi1"]
	if p1.Edges[0].To != 1 {
		t.Errorf("pi1 middle vertex = %d, want 1", p1.Edges[0].To)
	}
	// Unsat variant: remove Sp tuple; no shared middle.
	st2 := cq.NewStructure(3)
	for _, n := range []string{"R", "Rp", "S", "Sp"} {
		st2.AddRelation(n, 2)
	}
	st2.MustAddTuple("R", 0, 1)
	st2.MustAddTuple("Rp", 1, 2)
	st2.MustAddTuple("S", 2, 0)
	st2.MustAddTuple("Sp", 0, 0)
	db2, q2, err := CQToECRPQ(st2, comps)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.Evaluate(db2, q2, core.Options{Strategy: core.Generic})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Sat {
		// Middle of R-path is 1; middle of S-path is 0 → different words.
		t.Error("different middles should be unsatisfiable")
	}
}

func TestCQToECRPQAgainstCQEvalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		var edges [][2]int
		ne := 1 + rng.Intn(5)
		for i := 0; i < ne; i++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		st := structureWithEdges(n, edges)
		// Random small CQ over E.
		vars := []string{"x", "y", "z"}
		q := &cq.Query{}
		na := 1 + rng.Intn(3)
		for i := 0; i < na; i++ {
			q.Atoms = append(q.Atoms, cq.Atom{Rel: "E", Args: []string{
				vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))]}})
		}
		_, want, err := cq.EvalBacktrack(st, q)
		if err != nil {
			return false
		}
		sub, comps, err := SubdivideCQ(st, q)
		if err != nil {
			return false
		}
		db, eq, err := CQToECRPQ(sub, comps)
		if err != nil {
			return false
		}
		res, err := core.Evaluate(db, eq, core.Options{Strategy: core.Generic})
		if err != nil {
			return false
		}
		if res.Sat != want {
			t.Logf("seed %d: CQ=%v ECRPQ=%v (query %+v edges %v)", seed, want, res.Sat, q.Atoms, edges)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCQToECRPQErrors(t *testing.T) {
	st := cq.NewStructure(2)
	st.AddRelation("T", 3)
	st.MustAddTuple("T", 0, 0, 0)
	if _, _, err := CQToECRPQ(st, []SplitComponent{{Paths: []SplitAtom{{X: "x", R: "T", Rp: "T", Xp: "y"}}}}); err == nil {
		t.Error("ternary relation should error")
	}
	st2 := cq.NewStructure(2)
	st2.AddRelation("E", 2)
	if _, _, err := CQToECRPQ(st2, []SplitComponent{{}}); err == nil {
		t.Error("empty component should error")
	}
	if _, _, err := CQToECRPQ(st2, []SplitComponent{{Paths: []SplitAtom{{X: "x", R: "nope", Rp: "E", Xp: "y"}}}}); err == nil {
		t.Error("unknown relation should error")
	}
	if _, _, err := SubdivideCQ(st, &cq.Query{Atoms: []cq.Atom{{Rel: "T", Args: []string{"a", "b", "c"}}}}); err == nil {
		t.Error("non-binary SubdivideCQ should error")
	}
}
