package invariant_test

import (
	"errors"
	"strings"
	"testing"

	"ecrpq/internal/invariant"
)

func recoverViolation(t *testing.T, f func()) *invariant.Violation {
	t.Helper()
	var v *invariant.Violation
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			var ok bool
			v, ok = r.(*invariant.Violation)
			if !ok {
				t.Fatalf("panic payload is %T, want *invariant.Violation", r)
			}
		}()
		f()
	}()
	return v
}

func TestAssert(t *testing.T) {
	if v := recoverViolation(t, func() { invariant.Assert(true, "fine") }); v != nil {
		t.Fatalf("Assert(true) panicked: %v", v)
	}
	v := recoverViolation(t, func() { invariant.Assert(false, "broken thing") })
	if v == nil || !strings.Contains(v.Error(), "broken thing") {
		t.Fatalf("Assert(false) violation = %v", v)
	}
}

func TestAssertf(t *testing.T) {
	v := recoverViolation(t, func() { invariant.Assertf(false, "state %d out of range", 42) })
	if v == nil || !strings.Contains(v.Error(), "state 42 out of range") {
		t.Fatalf("Assertf violation = %v", v)
	}
}

func TestNoErrorAndMust(t *testing.T) {
	base := errors.New("boom")
	v := recoverViolation(t, func() { invariant.NoError(base, "adding edge") })
	if v == nil || !errors.Is(v, base) {
		t.Fatalf("NoError violation does not wrap the cause: %v", v)
	}
	if got := invariant.Must(7, nil); got != 7 {
		t.Fatalf("Must(7, nil) = %d", got)
	}
	v = recoverViolation(t, func() { invariant.Must(0, base) })
	if v == nil || !errors.Is(v, base) {
		t.Fatalf("Must violation does not wrap the cause: %v", v)
	}
}

func TestUnreachable(t *testing.T) {
	v := recoverViolation(t, func() { invariant.Unreachable("negative arity") })
	if v == nil || !strings.Contains(v.Error(), "unreachable: negative arity") {
		t.Fatalf("Unreachable violation = %v", v)
	}
}
