// Package invariant is the single sanctioned gateway to panicking in
// library code. The ecrpq-lint analyzer "panicfree" forbids the panic
// builtin (and log.Fatal*) everywhere under internal/ and in the root
// package except inside this package, so every irrecoverable condition is
// forced to state explicitly that it is an invariant violation — with a
// message — rather than an incidental panic.
//
// Use Assert/Assertf for conditions that the surrounding code guarantees
// by construction ("letters produced by FromNFA decode cleanly"), NoError
// and Must for Must-style convenience wrappers over error-returning
// constructors, and Unreachable for impossible branches. Recoverable
// input errors (malformed regexes, unknown symbols, bad state references
// supplied by a caller) must be returned as errors instead.
package invariant

import "fmt"

// Violation is the panic payload raised by this package. It implements
// error so recover-based harnesses (worker pools, fuzz drivers) can
// surface it as a regular error.
type Violation struct {
	// Msg describes the violated invariant.
	Msg string
	// Err is the underlying error for NoError/Must violations, if any.
	Err error
}

// Error implements the error interface.
func (v *Violation) Error() string {
	if v.Err != nil {
		return "invariant violated: " + v.Msg + ": " + v.Err.Error()
	}
	return "invariant violated: " + v.Msg
}

// Unwrap exposes the underlying error, if any.
func (v *Violation) Unwrap() error { return v.Err }

// Assert panics with a Violation carrying msg unless cond holds. The
// message is a plain string so hot paths pay only a comparison when the
// invariant holds.
func Assert(cond bool, msg string) {
	if !cond {
		panic(&Violation{Msg: msg})
	}
}

// Assertf is Assert with Printf-style message formatting. Prefer Assert
// on hot paths: Assertf's variadic arguments may allocate even when the
// condition holds.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic(&Violation{Msg: fmt.Sprintf(format, args...)})
	}
}

// NoError panics with a Violation if err is non-nil. context names the
// operation whose error is irrecoverable (typically a Must-style wrapper).
func NoError(err error, context string) {
	if err != nil {
		panic(&Violation{Msg: context, Err: err})
	}
}

// Must returns v after asserting err is nil; it is the standard body of a
// Must-style constructor wrapper:
//
//	func MustNew(names ...string) *Alphabet {
//		return invariant.Must(New(names...))
//	}
func Must[T any](v T, err error) T {
	if err != nil {
		panic(&Violation{Msg: "Must called with error", Err: err})
	}
	return v
}

// Unreachable marks a branch the surrounding logic rules out. It always
// panics with a Violation.
func Unreachable(msg string) {
	panic(&Violation{Msg: "unreachable: " + msg})
}
