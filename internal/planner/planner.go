// Package planner is the cost-based query planner. It combines the
// per-database statistics catalog (internal/stats) with the query's
// structural plan (core.Explain: components, automaton sizes, first-label
// sets) to
//
//   - resolve the "auto" strategy by comparing estimated Generic vs
//     Reduction cost instead of the fixed track-count rule,
//   - order the Generic backtracking's component completion sequence
//     (greedy, exact bitmask DP below a configurable component count), and
//   - decide whether first-label predicate pushdown into the product
//     search is worthwhile.
//
// The planner reads database statistics exclusively through the stats
// catalog API — it never touches internal/graphdb (enforced by the
// planstats lint). Decisions are deterministic functions of
// (catalog, plan, options), so two nodes holding the same generation
// resolve identically — replica EXPLAIN matches owner EXPLAIN.
package planner

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ecrpq/internal/core"
	"ecrpq/internal/stats"
)

// Config tunes the planner.
type Config struct {
	// DPMaxComponents is the component count at or below which join
	// ordering uses exact bitmask dynamic programming; above it the
	// greedy order is used. 0 means the default of 8 (2^8 subsets).
	DPMaxComponents int
	// NsPerCostUnit converts abstract cost units to nanoseconds for the
	// EstimatedMs fields. 0 means the default of 25ns, roughly one
	// product-state expansion on commodity hardware.
	NsPerCostUnit float64
}

func (c Config) dpMax() int {
	if c.DPMaxComponents <= 0 {
		return 8
	}
	return c.DPMaxComponents
}

func (c Config) nsPerUnit() float64 {
	if c.NsPerCostUnit <= 0 {
		return 25
	}
	return c.NsPerCostUnit
}

// maxSweepSources mirrors the reduction builder's hard cap on V^t source
// tuples: above it the sweep refuses to run, so the planner must not pick
// Reduction.
const maxSweepSources = float64(1 << 32)

// StageEstimate is one predicted evaluation stage. Stage carries the
// internal/trace span name the work will be recorded under, so measured
// self-times can be joined back onto the estimate by name (see the
// /v1/explain handler).
type StageEstimate struct {
	Stage       string  `json:"stage"`
	Detail      string  `json:"detail,omitempty"`
	Cost        float64 `json:"cost"`
	EstimatedMs float64 `json:"estimated_ms"`
}

// Decision is the planner's resolution for one (query, database
// generation) pair. It is immutable and safe to cache under the plan
// cache's "auto" pseudo-key until the generation changes.
type Decision struct {
	// Strategy is the concrete strategy to run (never core.Auto).
	Strategy core.Strategy `json:"-"`
	// StrategyName is Strategy rendered for JSON payloads.
	StrategyName string `json:"strategy"`
	// ComponentOrder permutes the plan's components for the Generic
	// backtracking (feeds core.PlanHints.ComponentOrder). nil keeps the
	// natural order.
	ComponentOrder []int `json:"component_order,omitempty"`
	// Pushdown reports whether first-label candidate restriction should
	// be applied (core.Prepared.PushdownCandidates).
	Pushdown bool `json:"pushdown"`
	// GenericCost and ReductionCost are the total estimated work units
	// for each strategy; the smaller one wins when the strategy is Auto.
	GenericCost   float64 `json:"generic_cost"`
	ReductionCost float64 `json:"reduction_cost"`
	// Stages breaks the chosen strategy's estimate down per trace stage.
	Stages []StageEstimate `json:"stages"`
	// StatsGeneration is the catalog generation the decision is based on
	// (0 with UsedFallback when no catalog was available).
	StatsGeneration uint64 `json:"stats_generation"`
	// UsedFallback marks a decision made without statistics, via the
	// fixed core.AutoStrategy track-count rule.
	UsedFallback bool `json:"used_fallback"`
}

// Resolve plans the query described by plan against the statistics in cat.
// opts.Strategy == core.Auto lets the cost model choose; a forced Generic
// or Reduction is kept but still costed so EXPLAIN shows estimates for
// forced strategies too. cat may be nil (no statistics yet), in which case
// the fixed AutoStrategy rule resolves and no ordering/pushdown hints are
// produced.
func Resolve(cat *stats.Catalog, plan *core.Plan, opts core.Options, cfg Config) *Decision {
	trackCounts := make([]int, len(plan.Components))
	for i, c := range plan.Components {
		trackCounts[i] = len(c.PathVars)
	}
	if cat == nil {
		strat := opts.Strategy
		if strat == core.Auto {
			strat = core.AutoStrategy(trackCounts, opts)
		}
		return &Decision{
			Strategy:     strat,
			StrategyName: strat.String(),
			UsedFallback: true,
		}
	}

	m := newModel(cat, plan, cfg)
	order, genericCost := m.orderComponents()
	reductionCost := m.reductionCost()

	strat := opts.Strategy
	if strat == core.Auto {
		if genericCost <= reductionCost {
			strat = core.Generic
		} else {
			strat = core.Reduction
		}
		// Past the sweep's hard source cap the reduction builder errors
		// out; never plan into it.
		if strat == core.Reduction && m.sweepSourcesExceeded() {
			strat = core.Generic
		}
	}

	d := &Decision{
		Strategy:        strat,
		StrategyName:    strat.String(),
		GenericCost:     genericCost,
		ReductionCost:   reductionCost,
		StatsGeneration: cat.Generation,
	}
	if strat == core.Generic {
		d.ComponentOrder = order
		d.Pushdown = m.hasPushdown()
		d.Stages = m.genericStages(order)
	} else {
		d.Stages = m.reductionStages()
	}
	return d
}

// model holds the derived quantities the cost formulas share.
type model struct {
	cat  *stats.Catalog
	plan *core.Plan
	cfg  Config

	v     float64 // |V|, at least 1 to keep formulas finite
	sigma float64 // any-label reachability selectivity, clamped to (0,1]
	// dom[i] is the estimated candidate-domain size product for component
	// i's NEW node variables ignoring bindings (per-variable domains
	// multiplied on demand in orderCost); varDom maps a node variable to
	// its pushdown-restricted domain size.
	varDom map[string]float64
}

func newModel(cat *stats.Catalog, plan *core.Plan, cfg Config) *model {
	v := float64(cat.Vertices)
	if v < 1 {
		v = 1
	}
	sigma := cat.AnyReachSelectivity
	if sigma <= 0 {
		sigma = 1 / v // nothing reaches anything: one hit per source (itself)
	}
	if sigma > 1 {
		sigma = 1
	}
	m := &model{cat: cat, plan: plan, cfg: cfg, v: v, sigma: sigma, varDom: map[string]float64{}}
	// Pushdown domain estimates: a variable sourcing a restricted track
	// only ranges over vertices with an out-edge in the allowed label set;
	// DistinctSrc is exactly that count per label. Multiple restricted
	// tracks on one source variable take the minimum.
	for _, pc := range plan.Components {
		for pv, labels := range pc.TrackFirstLabels {
			src, ok := pc.TrackSources[pv]
			if !ok {
				continue
			}
			total := 0.0
			for _, l := range labels {
				if ls, ok := cat.LabelByName(l); ok {
					total += float64(ls.DistinctSrc)
				}
			}
			if total > v {
				total = v
			}
			if cur, ok := m.varDom[src]; !ok || total < cur {
				m.varDom[src] = total
			}
		}
	}
	return m
}

func (m *model) hasPushdown() bool { return len(m.varDom) > 0 }

// domain returns the estimated candidate count for one node variable.
func (m *model) domain(v string) float64 {
	if d, ok := m.varDom[v]; ok {
		if d < 1 {
			return 1 // empty domains still cost the loop setup
		}
		return d
	}
	return m.v
}

// checkCost estimates one product-search check of component i: the
// automaton states times the endpoint-bounded product frontier. With all
// endpoints fixed the search explores at most states × (σ·V)^t product
// positions before concluding.
func (m *model) checkCost(i int) float64 {
	pc := m.plan.Components[i]
	t := float64(len(pc.PathVars))
	states := float64(pc.RelationStates)
	if states < 1 {
		states = 1
	}
	frontier := math.Pow(math.Max(m.sigma*m.v, 1), t)
	return states * frontier
}

// compSelectivity estimates the fraction of endpoint assignments of
// component i that survive its check: each track independently demands
// reachability between its endpoints.
func (m *model) compSelectivity(i int) float64 {
	t := len(m.plan.Components[i].PathVars)
	sel := math.Pow(m.sigma, float64(t))
	if sel < 1e-12 {
		sel = 1e-12
	}
	return sel
}

// orderCost walks one component order, accumulating the Generic
// backtracking estimate: candidates enumerated per step times the check
// cost, with survivors thinning by each component's selectivity.
func (m *model) orderCost(order []int) float64 {
	bound := map[string]bool{}
	survivors := 1.0
	total := 0.0
	for _, ci := range order {
		pc := m.plan.Components[ci]
		newDom := 1.0
		for _, nv := range pc.NodeVars {
			if !bound[nv] {
				bound[nv] = true
				newDom *= m.domain(nv)
			}
		}
		candidates := survivors * newDom
		total += candidates * m.checkCost(ci)
		survivors = candidates * m.compSelectivity(ci)
		if survivors < 1 {
			survivors = 1
		}
	}
	return total
}

// orderComponents picks the component completion order minimizing the
// estimated Generic cost: exact subset DP up to cfg.DPMaxComponents
// components, greedy beyond. Returns the order and its cost. A nil order
// (0 or 1 components) keeps the natural sequence.
func (m *model) orderComponents() ([]int, float64) {
	n := len(m.plan.Components)
	switch n {
	case 0:
		return nil, 0
	case 1:
		return nil, m.orderCost([]int{0})
	}
	if n <= m.cfg.dpMax() {
		return m.orderDP(n)
	}
	return m.orderGreedy(n)
}

// orderDP is Selinger-style bitmask DP over component subsets. State per
// subset: the cheapest total cost of completing exactly that subset, with
// the surviving-assignment count it implies (cost-optimal substructure is
// approximate because survivors also matter; the DP tracks the pair and
// minimizes cost, tie-breaking on survivors).
func (m *model) orderDP(n int) ([]int, float64) {
	type state struct {
		cost      float64
		survivors float64
		bound     map[string]bool
		last      int // component added to reach this subset
		prev      int // previous subset mask
	}
	states := make([]*state, 1<<n)
	states[0] = &state{cost: 0, survivors: 1, bound: map[string]bool{}, last: -1}
	for mask := 0; mask < 1<<n; mask++ {
		st := states[mask]
		if st == nil {
			continue
		}
		for ci := 0; ci < n; ci++ {
			if mask&(1<<ci) != 0 {
				continue
			}
			pc := m.plan.Components[ci]
			newDom := 1.0
			for _, nv := range pc.NodeVars {
				if !st.bound[nv] {
					newDom *= m.domain(nv)
				}
			}
			candidates := st.survivors * newDom
			cost := st.cost + candidates*m.checkCost(ci)
			survivors := candidates * m.compSelectivity(ci)
			if survivors < 1 {
				survivors = 1
			}
			next := mask | 1<<ci
			if cur := states[next]; cur == nil || cost < cur.cost ||
				(cost == cur.cost && survivors < cur.survivors) {
				nb := make(map[string]bool, len(st.bound)+len(pc.NodeVars))
				for k := range st.bound {
					nb[k] = true
				}
				for _, nv := range pc.NodeVars {
					nb[nv] = true
				}
				states[next] = &state{cost: cost, survivors: survivors, bound: nb, last: ci, prev: mask}
			}
		}
	}
	final := states[1<<n-1]
	order := make([]int, 0, n)
	for st := final; st != nil && st.last >= 0; st = states[st.prev] {
		order = append(order, st.last)
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, final.cost
}

// orderGreedy picks, at each step, the component with the cheapest
// marginal cost (candidates × check), tie-breaking toward the more
// selective component (smaller survivor fraction) so later steps see
// fewer surviving assignments.
func (m *model) orderGreedy(n int) ([]int, float64) {
	bound := map[string]bool{}
	survivors := 1.0
	used := make([]bool, n)
	order := make([]int, 0, n)
	total := 0.0
	for len(order) < n {
		best, bestCost, bestSel := -1, math.Inf(1), 0.0
		for ci := 0; ci < n; ci++ {
			if used[ci] {
				continue
			}
			newDom := 1.0
			for _, nv := range m.plan.Components[ci].NodeVars {
				if !bound[nv] {
					newDom *= m.domain(nv)
				}
			}
			cost := survivors * newDom * m.checkCost(ci)
			sel := m.compSelectivity(ci)
			if cost < bestCost || (cost == bestCost && sel < bestSel) {
				best, bestCost, bestSel = ci, cost, sel
			}
		}
		used[best] = true
		order = append(order, best)
		pc := m.plan.Components[best]
		newDom := 1.0
		for _, nv := range pc.NodeVars {
			if !bound[nv] {
				bound[nv] = true
				newDom *= m.domain(nv)
			}
		}
		candidates := survivors * newDom
		total += candidates * m.checkCost(best)
		survivors = candidates * m.compSelectivity(best)
		if survivors < 1 {
			survivors = 1
		}
	}
	return order, total
}

// sweepCost estimates component i's Lemma 4.3 R' sweep: one bounded
// product exploration from each of V^t source tuples.
func (m *model) sweepCost(i int) float64 {
	t := float64(len(m.plan.Components[i].PathVars))
	return math.Pow(m.v, t) * m.checkCost(i)
}

// rows estimates component i's materialized R' row count.
func (m *model) rows(i int) float64 {
	t := len(m.plan.Components[i].PathVars)
	return math.Pow(m.v*m.v*m.sigma, float64(t))
}

func (m *model) sweepSourcesExceeded() bool {
	for i := range m.plan.Components {
		t := float64(len(m.plan.Components[i].PathVars))
		if math.Pow(m.v, t) > maxSweepSources {
			return true
		}
	}
	return false
}

// reductionCost totals the Reduction strategy estimate: the per-component
// sweeps plus the CQ join over the materialized rows.
func (m *model) reductionCost() float64 {
	total := 0.0
	joinRows := 0.0
	for i := range m.plan.Components {
		total += m.sweepCost(i)
		joinRows += m.rows(i)
	}
	// Free tracks add one reachability relation of ≈ σ·V² rows.
	if len(m.plan.FreeTracks) > 0 {
		joinRows += m.sigma * m.v * m.v * float64(len(m.plan.FreeTracks))
	}
	if m.sweepSourcesExceeded() {
		return math.Inf(1)
	}
	return total + joinRows
}

func (m *model) toMs(cost float64) float64 {
	return cost * m.cfg.nsPerUnit() / 1e6
}

// genericStages breaks the Generic estimate into trace-named stages.
func (m *model) genericStages(order []int) []StageEstimate {
	seq := order
	if seq == nil {
		seq = make([]int, len(m.plan.Components))
		for i := range seq {
			seq[i] = i
		}
	}
	cost := m.orderCost(seq)
	detail := make([]string, len(seq))
	for i, ci := range seq {
		detail[i] = fmt.Sprintf("c%d{%s}", ci, strings.Join(m.plan.Components[ci].PathVars, ","))
	}
	return []StageEstimate{{
		Stage:       "core/product_search",
		Detail:      "component order " + strings.Join(detail, " → "),
		Cost:        cost,
		EstimatedMs: m.toMs(cost),
	}}
}

// reductionStages breaks the Reduction estimate into trace-named stages.
func (m *model) reductionStages() []StageEstimate {
	var out []StageEstimate
	sweep := 0.0
	for i := range m.plan.Components {
		sweep += m.sweepCost(i)
	}
	joinRows := 0.0
	for i := range m.plan.Components {
		joinRows += m.rows(i)
	}
	if len(m.plan.FreeTracks) > 0 {
		joinRows += m.sigma * m.v * m.v * float64(len(m.plan.FreeTracks))
	}
	out = append(out, StageEstimate{
		Stage:       "core/sweep",
		Detail:      fmt.Sprintf("%d component R' sweep(s)", len(m.plan.Components)),
		Cost:        sweep,
		EstimatedMs: m.toMs(sweep),
	})
	out = append(out, StageEstimate{
		Stage:       "core/cq_join",
		Detail:      "tree-decomposition join over materialized rows",
		Cost:        joinRows,
		EstimatedMs: m.toMs(joinRows),
	})
	witness := float64(len(m.plan.Components)) * m.v
	out = append(out, StageEstimate{
		Stage:       "core/witness",
		Detail:      "per-component witness recovery",
		Cost:        witness,
		EstimatedMs: m.toMs(witness),
	})
	return out
}

// SortedStageNames lists the distinct stage names of a decision, sorted —
// a convenience for tests pinning payload shapes.
func (d *Decision) SortedStageNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range d.Stages {
		if !seen[s.Stage] {
			seen[s.Stage] = true
			out = append(out, s.Stage)
		}
	}
	sort.Strings(out)
	return out
}
