package planner

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/core"
	"ecrpq/internal/stats"
	"ecrpq/internal/workload"
)

func catalogFor(t *testing.T, seed int64, a *alphabet.Alphabet, n, e int) *stats.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := workload.RandomDB(rng, a, n, e)
	cat, err := stats.Compute(context.Background(), db, 1)
	if err != nil {
		t.Fatalf("stats.Compute: %v", err)
	}
	return cat
}

func TestResolveWithoutCatalogFallsBack(t *testing.T) {
	a := alphabet.Lower(2)
	q := workload.FanQuery(a, 3)
	plan, err := core.Explain(q, core.Options{})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	d := Resolve(nil, plan, core.Options{}, Config{})
	if !d.UsedFallback {
		t.Error("expected fallback without a catalog")
	}
	// Fixed rule: one component with 3 tracks ≤ MaxReductionTracks(3).
	if d.Strategy != core.Reduction {
		t.Errorf("fallback strategy = %v, want Reduction", d.Strategy)
	}
}

func TestResolveFanPrefersGeneric(t *testing.T) {
	// The sweep-heavy regime: FanQuery(t=3) has a single 3-track component
	// over only two node variables. The fixed rule picks Reduction (V³
	// source sweeps); the cost model sees V² node assignments and picks
	// Generic.
	a := alphabet.Lower(2)
	q := workload.FanQuery(a, 3)
	plan, err := core.Explain(q, core.Options{})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	cat := catalogFor(t, 5, a, 17, 34)
	d := Resolve(cat, plan, core.Options{}, Config{})
	if d.UsedFallback {
		t.Fatal("unexpected fallback")
	}
	if d.Strategy != core.Generic {
		t.Errorf("strategy = %v (generic %.3g vs reduction %.3g), want Generic",
			d.Strategy, d.GenericCost, d.ReductionCost)
	}
	if core.AutoStrategy([]int{3}, core.Options{}) != core.Reduction {
		t.Error("fixed rule no longer picks Reduction on t=3; test premise broken")
	}
	if len(d.Stages) == 0 {
		t.Error("no stage estimates")
	}
	for _, s := range d.Stages {
		if s.EstimatedMs < 0 || math.IsNaN(s.EstimatedMs) {
			t.Errorf("stage %s has bad estimate %v", s.Stage, s.EstimatedMs)
		}
	}
}

func TestResolvePairChainKeepsReduction(t *testing.T) {
	// Two-track components sweep V² sources; the Generic search would
	// backtrack over V per chained variable with weak pruning. The model
	// must agree with the fixed rule here (no regression regime).
	a := alphabet.Lower(2)
	q := workload.PairChainQuery(a, 4)
	plan, err := core.Explain(q, core.Options{})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	cat := catalogFor(t, 7, a, 40, 120)
	d := Resolve(cat, plan, core.Options{}, Config{})
	if d.Strategy != core.Reduction {
		t.Errorf("strategy = %v (generic %.3g vs reduction %.3g), want Reduction",
			d.Strategy, d.GenericCost, d.ReductionCost)
	}
}

func TestResolveForcedStrategyKept(t *testing.T) {
	a := alphabet.Lower(2)
	q := workload.FanQuery(a, 3)
	plan, err := core.Explain(q, core.Options{Strategy: core.Reduction})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	cat := catalogFor(t, 5, a, 17, 34)
	d := Resolve(cat, plan, core.Options{Strategy: core.Reduction}, Config{})
	if d.Strategy != core.Reduction {
		t.Errorf("forced reduction resolved to %v", d.Strategy)
	}
	if d.GenericCost == 0 || d.ReductionCost == 0 {
		t.Error("forced strategies must still be costed for EXPLAIN")
	}
	if len(d.Stages) == 0 || d.Stages[0].Stage != "core/sweep" {
		t.Errorf("reduction stages = %+v", d.Stages)
	}
}

func TestResolveDeterministic(t *testing.T) {
	a := alphabet.Lower(3)
	q := workload.CliqueQuery(a, 4)
	plan, err := core.Explain(q, core.Options{})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	cat := catalogFor(t, 9, a, 30, 90)
	d1 := Resolve(cat, plan, core.Options{}, Config{})
	d2 := Resolve(cat, plan, core.Options{}, Config{})
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("two resolutions differ:\n  %+v\n  %+v", d1, d2)
	}
}

func TestComponentOrderIsPermutation(t *testing.T) {
	a := alphabet.Lower(3)
	q := workload.CliqueQuery(a, 4) // 6 singleton components
	plan, err := core.Explain(q, core.Options{MaxReductionTracks: 0, Strategy: core.Generic})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	cat := catalogFor(t, 9, a, 30, 90)
	for _, cfg := range []Config{{}, {DPMaxComponents: 2}} { // DP and greedy paths
		d := Resolve(cat, plan, core.Options{Strategy: core.Generic}, cfg)
		if d.Strategy != core.Generic {
			t.Fatalf("strategy = %v", d.Strategy)
		}
		if d.ComponentOrder == nil {
			continue
		}
		if len(d.ComponentOrder) != len(plan.Components) {
			t.Fatalf("order length %d, want %d", len(d.ComponentOrder), len(plan.Components))
		}
		seen := make([]bool, len(plan.Components))
		for _, ci := range d.ComponentOrder {
			if ci < 0 || ci >= len(seen) || seen[ci] {
				t.Fatalf("order %v is not a permutation", d.ComponentOrder)
			}
			seen[ci] = true
		}
	}
}

func TestPushdownDetected(t *testing.T) {
	// CliqueQuery uses one-letter languages: every track has a singleton
	// first-label set, so pushdown must trigger.
	a := alphabet.Lower(3)
	q := workload.CliqueQuery(a, 3)
	plan, err := core.Explain(q, core.Options{Strategy: core.Generic})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	restricted := 0
	for _, pc := range plan.Components {
		restricted += len(pc.TrackFirstLabels)
	}
	if restricted == 0 {
		t.Fatal("no TrackFirstLabels on a single-label query; pushdown analysis broken")
	}
	cat := catalogFor(t, 9, a, 30, 90)
	d := Resolve(cat, plan, core.Options{Strategy: core.Generic}, Config{})
	if !d.Pushdown {
		t.Error("pushdown not enabled despite restricted tracks")
	}
}

func TestHugeSweepForcesGeneric(t *testing.T) {
	// V^t beyond the sweep source cap must never resolve to Reduction.
	a := alphabet.Lower(2)
	q := workload.FanQuery(a, 3)
	plan, err := core.Explain(q, core.Options{})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	cat := &stats.Catalog{Generation: 1, Vertices: 1 << 12, Edges: 1 << 13, AnyReachSelectivity: 0.5}
	d := Resolve(cat, plan, core.Options{}, Config{})
	if d.Strategy != core.Generic {
		t.Errorf("strategy = %v with V^3 = 2^36 sweep sources, want Generic", d.Strategy)
	}
	if !math.IsInf(d.ReductionCost, 1) {
		t.Errorf("reduction cost = %v, want +Inf", d.ReductionCost)
	}
}
