package client

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned without touching the network while the
// breaker is open (or while a half-open probe is already in flight).
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// breaker is a consecutive-failure circuit breaker: `threshold` 5xx-class
// failures in a row trip it open, every call then fails fast until
// `cooldown` has elapsed, after which exactly one probe request is let
// through (half-open). The probe's outcome closes the breaker or re-opens
// it for another cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    int // breakerClosed | breakerOpen | breakerHalfOpen
	consec   int
	openedAt time.Time
	probing  bool
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// allow reports whether a request may proceed now.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrCircuitOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	case breakerHalfOpen:
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	default:
		return nil
	}
}

// onSuccess records a non-5xx response: any 2xx–4xx means the server is
// alive and making decisions, which is what the breaker protects.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consec = 0
	b.probing = false
}

// onFailure records a transport error or 5xx-class response.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	if b.state == breakerHalfOpen || b.consec >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.consec = 0
	}
}
