package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testClient returns a client against url whose sleeps are recorded
// instead of performed and whose jitter is pinned to the top of the
// window (rnd = 1 - ε behaves like rnd ≈ 1 for assertions).
func testClient(url string, cfg Config) (*Client, *[]time.Duration) {
	cfg.BaseURL = url
	c := New(cfg)
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	c.rnd = func() float64 { return 0.999 }
	return c, &slept
}

// flakyHandler fails `failures` times with `code` before succeeding.
func flakyHandler(failures int32, code int, header http.Header) (*atomic.Int32, http.HandlerFunc) {
	var calls atomic.Int32
	return &calls, func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= failures {
			for k, vs := range header {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(code)
			w.Write([]byte(`{"error":"transient"}`))
			return
		}
		w.Write([]byte(`{"status":"ok","databases":3}`))
	}
}

func TestRetryThenSuccess(t *testing.T) {
	calls, h := flakyHandler(2, http.StatusServiceUnavailable, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, slept := testClient(srv.URL, Config{MaxRetries: 4, BaseDelay: 100 * time.Millisecond})
	health, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if health.Databases != 3 {
		t.Errorf("databases=%d, want 3", health.Databases)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3 (2 failures + success)", calls.Load())
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	// Full jitter with rnd≈1: windows are ~100ms then ~200ms.
	if (*slept)[0] > 100*time.Millisecond || (*slept)[1] > 200*time.Millisecond ||
		(*slept)[1] <= (*slept)[0] {
		t.Errorf("backoff not exponential: %v", *slept)
	}
	if c.Retries() != 2 {
		t.Errorf("Retries()=%d, want 2", c.Retries())
	}
}

func TestRetryAfterHonored(t *testing.T) {
	hdr := http.Header{}
	hdr.Set("Retry-After", "3")
	_, h := flakyHandler(1, http.StatusTooManyRequests, hdr)
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, slept := testClient(srv.URL, Config{BaseDelay: time.Millisecond})
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health: %v", err)
	}
	if len(*slept) != 1 || (*slept)[0] < 3*time.Second {
		t.Errorf("Retry-After: 3 not honored: slept %v", *slept)
	}
}

func TestNonIdempotentNotRetried(t *testing.T) {
	calls, h := flakyHandler(100, http.StatusServiceUnavailable, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, slept := testClient(srv.URL, Config{MaxRetries: 5})
	_, err := c.RegisterDB(context.Background(), "g", "alphabet a\nu a v\n")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err=%v, want StatusError 503", err)
	}
	if calls.Load() != 1 {
		t.Errorf("register was attempted %d times, want exactly 1", calls.Load())
	}
	if len(*slept) != 0 {
		t.Errorf("register slept %v, want no backoff at all", *slept)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	calls, h := flakyHandler(100, http.StatusNotFound, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, _ := testClient(srv.URL, Config{MaxRetries: 5})
	_, err := c.ListDBs(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err=%v, want StatusError 404", err)
	}
	if calls.Load() != 1 {
		t.Errorf("404 retried: %d calls", calls.Load())
	}
}

func TestRetryBudgetCapsTotalSleep(t *testing.T) {
	calls, h := flakyHandler(100, http.StatusServiceUnavailable, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, slept := testClient(srv.URL, Config{
		MaxRetries: 50, BaseDelay: 100 * time.Millisecond,
		MaxDelay: 100 * time.Millisecond, RetryBudget: 350 * time.Millisecond,
	})
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("expected a terminal error once the budget ran out")
	}
	var total time.Duration
	for _, d := range *slept {
		total += d
	}
	if total > 350*time.Millisecond {
		t.Errorf("slept %v total, budget was 350ms", total)
	}
	if calls.Load() > 6 {
		t.Errorf("server saw %d calls under a 3-sleep budget", calls.Load())
	}
}

// TestQuotaRetryBudgetSeparateFrom503 pins the two retry budgets: 429
// responses (server refused the work on purpose) give up under the tight
// quota budget, while 503s (server temporarily unable) keep grinding
// through the full transient budget — under identical backoff settings.
func TestQuotaRetryBudgetSeparateFrom503(t *testing.T) {
	cases := []struct {
		name      string
		status    int
		errCode   string
		wantCalls int32 // 1 first try + retries until the relevant budget stops the sleeps
		wantInErr string
	}{
		// Sleeps are pinned at ~100ms each (MaxDelay). Quota budget 150ms
		// admits one 429 sleep; transient budget 450ms admits four.
		{"429 stops on quota budget", http.StatusTooManyRequests, "RESOURCE_EXHAUSTED", 2, "quota-retry budget"},
		{"503 uses transient budget", http.StatusServiceUnavailable, "", 5, "retry budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int32
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				w.WriteHeader(tc.status)
				if tc.errCode != "" {
					w.Write([]byte(`{"error":"no memory budget","code":"` + tc.errCode + `"}`))
					return
				}
				w.Write([]byte(`{"error":"draining"}`))
			}))
			defer srv.Close()
			c, _ := testClient(srv.URL, Config{
				MaxRetries: 50, BaseDelay: 100 * time.Millisecond, MaxDelay: 100 * time.Millisecond,
				RetryBudget: 450 * time.Millisecond, QuotaRetryBudget: 150 * time.Millisecond,
				BreakerThreshold: -1,
			})
			_, err := c.Health(context.Background())
			if err == nil {
				t.Fatal("expected a terminal error")
			}
			if !strings.Contains(err.Error(), tc.wantInErr) {
				t.Errorf("err = %v, want mention of %q", err, tc.wantInErr)
			}
			var se *StatusError
			if !errors.As(err, &se) || se.Code != tc.status || se.ErrCode != tc.errCode {
				t.Errorf("StatusError = %+v, want code %d errcode %q", se, tc.status, tc.errCode)
			}
			if calls.Load() != tc.wantCalls {
				t.Errorf("server saw %d calls, want %d", calls.Load(), tc.wantCalls)
			}
		})
	}
}

func TestCircuitBreakerTripsAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"boom"}`))
	}))
	defer srv.Close()

	now := time.Unix(1000, 0)
	c, _ := testClient(srv.URL, Config{
		MaxRetries: 0, BreakerThreshold: 3, BreakerCooldown: 10 * time.Second,
	})
	c.now = func() time.Time { return now }
	c.breaker.now = c.now

	// Three consecutive 500s trip the breaker (500 is not retried: only
	// 429/502/503/504 are transient).
	for i := 0; i < 3; i++ {
		if _, err := c.Health(context.Background()); err == nil {
			t.Fatal("expected failure")
		}
	}
	before := calls.Load()
	if _, err := c.Health(context.Background()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker not open: err=%v", err)
	}
	if calls.Load() != before {
		t.Error("open breaker still hit the server")
	}

	// After the cooldown, one half-open probe goes through; its failure
	// re-opens the breaker immediately.
	now = now.Add(11 * time.Second)
	if _, err := c.Health(context.Background()); errors.Is(err, ErrCircuitOpen) {
		t.Fatal("half-open probe was not allowed")
	}
	if _, err := c.Health(context.Background()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed probe did not re-open the breaker: err=%v", err)
	}

	// Next cooldown: the server has recovered, the probe closes the
	// breaker, and traffic flows again.
	healthy.Store(true)
	now = now.Add(11 * time.Second)
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("closed breaker refused traffic: %v", err)
	}
}

func TestTransportErrorRetriedAndCounted(t *testing.T) {
	// A server that is immediately closed: every attempt is a transport
	// error, which is retryable for idempotent calls.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()
	c, slept := testClient(url, Config{MaxRetries: 2, BreakerThreshold: -1})
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("expected transport error")
	}
	if len(*slept) != 2 {
		t.Errorf("transport errors slept %d times, want 2 (MaxRetries)", len(*slept))
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"5", 5 * time.Second},
		{" 12 ", 12 * time.Second},
		{"-3", 0},
		{"junk", 0},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Hour).Format(http.TimeFormat), 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestEnumerateRetriedIdempotently pins the paging retry contract: a
// transient 503 on a cursor re-send is retried with the cursor bytes
// re-sent verbatim — so the retried attempt asks for exactly the same
// page and the enumeration neither skips nor duplicates a page — while
// a 410 STALE_CURSOR is permanent and surfaces immediately.
func TestEnumerateRetriedIdempotently(t *testing.T) {
	var calls atomic.Int32
	var mu sync.Mutex
	var cursorsSeen []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/enumerate" {
			t.Errorf("path %s", r.URL.Path)
		}
		var req EnumerateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding enumerate body: %v", err)
		}
		mu.Lock()
		cursorsSeen = append(cursorsSeen, req.Cursor)
		mu.Unlock()
		switch calls.Add(1) {
		case 1:
			// Transient failure on the first attempt for page one.
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"draining"}`))
		case 2:
			// Retried attempt: must carry cursor "c0" again (checked below).
			w.Write([]byte(`{"answers":[["u","v"]],"count":1,"more":true,"next_cursor":"abc","strategy":"reduction","cache":"hit","query_hash":"h"}`))
		default:
			// Page two, requested with the cursor page one returned.
			w.Write([]byte(`{"answers":[["x","y"]],"count":1,"more":false,"strategy":"reduction","cache":"hit","query_hash":"h"}`))
		}
	}))
	defer srv.Close()
	c, _ := testClient(srv.URL, Config{MaxRetries: 3})
	page, err := c.Enumerate(context.Background(), EnumerateRequest{DB: "g", Query: "q", Cursor: "c0", Limit: 1})
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls=%d, want a retry after the 503", calls.Load())
	}
	if page.NextCursor != "abc" || !page.More || page.Count != 1 {
		t.Fatalf("page = %+v", page)
	}
	page2, err := c.Enumerate(context.Background(), EnumerateRequest{DB: "g", Query: "q", Cursor: page.NextCursor, Limit: 1})
	if err != nil {
		t.Fatalf("Enumerate page 2: %v", err)
	}
	if page2.More || page2.Count != 1 || page2.Answers[0][0] != "x" {
		t.Fatalf("page 2 = %+v", page2)
	}
	mu.Lock()
	got := append([]string(nil), cursorsSeen...)
	mu.Unlock()
	// The failed attempt and its retry both carried "c0" byte-for-byte:
	// the server can hand out the same page twice without the client ever
	// skipping past it or double-counting it. Page two then advanced with
	// the freshly minted cursor, exactly once.
	want := []string{"c0", "c0", "abc"}
	if len(got) != len(want) {
		t.Fatalf("cursors seen = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cursor on attempt %d = %q, want %q (full sequence %q)", i+1, got[i], want[i], got)
		}
	}

	staleSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusGone)
		w.Write([]byte(`{"error":"database re-registered","code":"STALE_CURSOR"}`))
	}))
	defer staleSrv.Close()
	c2, slept := testClient(staleSrv.URL, Config{MaxRetries: 3})
	_, err = c2.Enumerate(context.Background(), EnumerateRequest{DB: "g", Query: "q", Cursor: "old"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusGone || se.ErrCode != "STALE_CURSOR" {
		t.Fatalf("err = %v, want 410 STALE_CURSOR", err)
	}
	if len(*slept) != 0 {
		t.Fatalf("client slept %v retrying a permanent 410", *slept)
	}
}
