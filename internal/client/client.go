// Package client is the fault-tolerant HTTP client for ecrpqd, used by
// ecrpq-shell's remote mode and the ecrpqd -check probe. It wraps the
// daemon's JSON API with:
//
//   - exponential backoff with full jitter on transient failures
//     (transport errors, 429, 502, 503, 504), honoring Retry-After;
//   - a strict idempotency rule: only requests that are safe to repeat
//     (health, list, query, measures, drop) are retried — registration is
//     not, because each attempt allocates a generation and invalidates
//     cached materializations;
//   - a total retry budget (wall-clock cap across all attempts of one
//     call) on top of the per-call context deadline;
//   - a consecutive-failure circuit breaker with a half-open probe, so a
//     down server costs one failed request per cooldown instead of a
//     retry storm.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config tunes a Client. The zero value of every field gets a sensible
// default from New; only BaseURL is required.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// HTTPClient is the transport (default: http.Client with a 2-minute
	// overall timeout; per-call contexts bound individual requests).
	HTTPClient *http.Client
	// MaxRetries is the number of re-attempts after the first try
	// (default 4).
	MaxRetries int
	// BaseDelay seeds the exponential backoff (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 5s).
	MaxDelay time.Duration
	// RetryBudget caps the total time spent sleeping between retries of
	// one call (default 30s).
	RetryBudget time.Duration
	// QuotaRetryBudget caps the sleep attributable to 429 responses
	// (quota, memory budget, shed) within one call, separately from
	// RetryBudget (default 10s). A 429 means the server chose to refuse
	// this client or this query — grinding through the full transient
	// budget would just re-spend quota — while 5xx-class failures keep
	// the larger budget because the server never saw or never finished
	// the work.
	QuotaRetryBudget time.Duration
	// BreakerThreshold is how many consecutive 5xx-class failures trip the
	// circuit breaker (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting a
	// half-open probe through (default 10s).
	BreakerCooldown time.Duration
}

// StatusError is a non-2xx daemon response, carrying the HTTP status, the
// server's error message, its machine-readable code (RESOURCE_EXHAUSTED,
// QUOTA_EXCEEDED, SHED, OVERLOADED; empty for responses without one), and
// any Retry-After hint.
type StatusError struct {
	Code       int
	ErrCode    string
	Msg        string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.ErrCode != "" {
		return fmt.Sprintf("client: server returned %d %s: %s", e.Code, e.ErrCode, e.Msg)
	}
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Msg)
}

// Temporary reports whether the status is a transient condition worth
// retrying (overload, drain, or an upstream timeout).
func (e *StatusError) Temporary() bool {
	switch e.Code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Client is a fault-tolerant ecrpqd API client. Safe for concurrent use.
type Client struct {
	base    string
	http    *http.Client
	cfg     Config
	breaker *breaker

	// Injectable for deterministic tests.
	rnd   func() float64
	sleep func(ctx context.Context, d time.Duration) error
	now   func() time.Time

	mu      sync.Mutex
	retries uint64 // total retry attempts performed (observability)
}

// New returns a client for the daemon at cfg.BaseURL.
func New(cfg Config) *Client {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 2 * time.Minute}
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 100 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Second
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 30 * time.Second
	}
	if cfg.QuotaRetryBudget <= 0 {
		cfg.QuotaRetryBudget = 10 * time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 10 * time.Second
	}
	now := time.Now
	c := &Client{
		base: strings.TrimRight(cfg.BaseURL, "/"),
		http: cfg.HTTPClient,
		cfg:  cfg,
		rnd:  rand.Float64,
		now:  now,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
	if cfg.BreakerThreshold > 0 {
		c.breaker = &breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown, now: now}
	}
	return c
}

// Retries returns the total number of retry attempts this client has made
// (first attempts excluded).
func (c *Client) Retries() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries
}

// backoffDelay computes the attempt'th retry sleep: full jitter over an
// exponentially growing window, capped at MaxDelay ("Full Jitter" from the
// AWS architecture blog — the variant that best de-correlates synchronized
// retry storms).
func (c *Client) backoffDelay(attempt int) time.Duration {
	window := c.cfg.BaseDelay << uint(attempt)
	if window > c.cfg.MaxDelay || window <= 0 {
		window = c.cfg.MaxDelay
	}
	return time.Duration(c.rnd() * float64(window))
}

// parseRetryAfter reads a Retry-After header (delta-seconds or HTTP-date).
// The result is never negative: a negative delta-seconds value or an
// HTTP-date in the past clamps to zero, because a negative duration fed
// into the backoff arithmetic would shorten the computed delay and
// corrupt the retry-budget accounting.
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d
	}
	return 0
}

// do performs one API call with the retry/breaker policy. body is re-sent
// from the byte slice on every attempt; out (when non-nil) receives the
// decoded 2xx JSON body.
func (c *Client) do(ctx context.Context, method, path string, body []byte, idempotent bool, out any) error {
	var slept, sleptQuota time.Duration
	for attempt := 0; ; attempt++ {
		if c.breaker != nil {
			if err := c.breaker.allow(); err != nil {
				return err
			}
		}
		statusErr, transportErr := c.once(ctx, method, path, body, out)
		if transportErr == nil && statusErr == nil {
			if c.breaker != nil {
				c.breaker.onSuccess()
			}
			return nil
		}
		var retryAfter time.Duration
		var err error
		if transportErr != nil {
			if c.breaker != nil {
				c.breaker.onFailure()
			}
			err = transportErr
		} else {
			if c.breaker != nil {
				if statusErr.Code >= 500 {
					c.breaker.onFailure()
				} else {
					c.breaker.onSuccess()
				}
			}
			err = statusErr
			retryAfter = statusErr.RetryAfter
		}
		retryable := idempotent && attempt < c.cfg.MaxRetries &&
			(transportErr != nil || statusErr.Temporary())
		if !retryable || ctx.Err() != nil {
			return err
		}
		delay := c.backoffDelay(attempt)
		if retryAfter > delay {
			delay = retryAfter
		}
		// 429s spend their own, tighter budget: the server refused this
		// client on purpose, so a long grind of re-sends only burns more
		// of its quota or memory budget. 5xx and transport failures keep
		// the full transient budget.
		quotaDenied := statusErr != nil && statusErr.Code == http.StatusTooManyRequests
		if quotaDenied && sleptQuota+delay > c.cfg.QuotaRetryBudget {
			return fmt.Errorf("client: quota-retry budget %s exhausted after %d attempt(s): %w",
				c.cfg.QuotaRetryBudget, attempt+1, err)
		}
		if slept+delay > c.cfg.RetryBudget {
			return fmt.Errorf("client: retry budget %s exhausted after %d attempt(s): %w",
				c.cfg.RetryBudget, attempt+1, err)
		}
		if err := c.sleep(ctx, delay); err != nil {
			return err
		}
		slept += delay
		if quotaDenied {
			sleptQuota += delay
		}
		c.mu.Lock()
		c.retries++
		c.mu.Unlock()
	}
}

// once performs a single HTTP attempt. Exactly one of the returns is
// non-nil on failure; (nil, nil) is success with out populated.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) (*StatusError, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		msg := strings.TrimSpace(string(raw))
		var e struct {
			Error   string `json:"error"`
			ErrCode string `json:"code"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &StatusError{
			Code:       resp.StatusCode,
			ErrCode:    e.ErrCode,
			Msg:        msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"), c.now()),
		}, nil
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return nil, fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil, nil
}

// --- API surface ---

// Health is the GET /healthz body.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Databases     int     `json:"databases"`
	Inflight      int64   `json:"inflight"`
}

// Health probes the daemon's liveness. Retried: a starting-up or draining
// daemon answers eventually/elsewhere.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var h Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, true, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Ready probes the daemon's readiness (GET /readyz): 200 means the node
// is accepting work, 503 means it is up but draining. Cluster probers use
// this instead of Health because a draining node must be routed around
// exactly like a dead one. Retried under the client's policy; failure
// detectors should configure MaxRetries: -1 so one probe is one verdict.
func (c *Client) Ready(ctx context.Context) (*Health, error) {
	var h Health
	if err := c.do(ctx, http.MethodGet, "/readyz", nil, true, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// DBInfo is one row of GET /v1/dbs.
type DBInfo struct {
	Name         string    `json:"name"`
	Generation   uint64    `json:"generation"`
	Vertices     int       `json:"vertices"`
	RegisteredAt time.Time `json:"registered_at"`
}

// ListDBs lists the registered databases. Retried (read-only).
func (c *Client) ListDBs(ctx context.Context) ([]DBInfo, error) {
	var out struct {
		Databases []DBInfo `json:"databases"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/dbs", nil, true, &out); err != nil {
		return nil, err
	}
	return out.Databases, nil
}

// RegisterResult is the POST /v1/dbs/{name} response.
type RegisterResult struct {
	Name       string `json:"name"`
	Generation uint64 `json:"generation"`
	Vertices   int    `json:"vertices"`
	Replaced   bool   `json:"replaced"`
}

// RegisterDB registers or replaces a database from its text format. NOT
// retried: each attempt allocates a fresh generation and invalidates
// cached materializations, so blind re-sends are the caller's decision.
func (c *Client) RegisterDB(ctx context.Context, name, text string) (*RegisterResult, error) {
	var out RegisterResult
	if err := c.do(ctx, http.MethodPost, "/v1/dbs/"+url.PathEscape(name), []byte(text), false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DropDB removes a database. Retried: DELETE is idempotent (a retry that
// lands after a success gets a 404, which the caller can treat as done).
func (c *Client) DropDB(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/dbs/"+url.PathEscape(name), nil, true, nil)
}

// QueryRequest is the POST /v1/query body. Forwarded marks one
// cluster-internal routing hop: a node that receives a forwarded request
// for a database it does not hold answers 404 instead of forwarding
// again, so a stale ring view cannot create a routing loop.
type QueryRequest struct {
	DB        string `json:"db"`
	Query     string `json:"query"`
	Strategy  string `json:"strategy,omitempty"`
	TimeoutMs int64  `json:"timeout_ms,omitempty"`
	Forwarded bool   `json:"fwd,omitempty"`
}

// QueryResponse mirrors the daemon's success body. Stats stays raw JSON so
// the client does not depend on the engine's stats shape.
type QueryResponse struct {
	Sat       bool              `json:"sat"`
	Strategy  string            `json:"strategy"`
	Cache     string            `json:"cache"`
	QueryHash string            `json:"query_hash"`
	Nodes     map[string]string `json:"nodes,omitempty"`
	Paths     map[string]string `json:"paths,omitempty"`
	Answers   [][]string        `json:"answers,omitempty"`
	Free      []string          `json:"free,omitempty"`
	Stats     json.RawMessage   `json:"stats"`
	ElapsedMs float64           `json:"elapsed_ms"`
}

// Query evaluates a query. Retried: evaluation is read-only, so repeating
// a timed-out or shed request is safe.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding query: %w", err)
	}
	var out QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/query", body, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EnumerateRequest is the POST /v1/enumerate body. Cursor resumes a
// previous page's NextCursor; empty starts from the first answer.
type EnumerateRequest struct {
	DB        string `json:"db"`
	Query     string `json:"query"`
	Strategy  string `json:"strategy,omitempty"`
	Limit     int    `json:"limit,omitempty"`
	Cursor    string `json:"cursor,omitempty"`
	TimeoutMs int64  `json:"timeout_ms,omitempty"`
	Forwarded bool   `json:"fwd,omitempty"`
}

// EnumerateResponse is one page of answers.
type EnumerateResponse struct {
	Answers    [][]string `json:"answers"`
	Free       []string   `json:"free,omitempty"`
	Count      int        `json:"count"`
	More       bool       `json:"more"`
	NextCursor string     `json:"next_cursor,omitempty"`
	Strategy   string     `json:"strategy"`
	Cache      string     `json:"cache"`
	QueryHash  string     `json:"query_hash"`
	ElapsedMs  float64    `json:"elapsed_ms"`
}

// Enumerate fetches one page of a streamed answer enumeration. Retried
// with GET-like semantics: a page read is read-only and the enumeration
// order is deterministic server-side, so re-sending the same cursor
// after a timeout or shed returns the same page, never a skipped or
// doubled one. A 410 STALE_CURSOR (database re-registered mid-
// enumeration) is not transient and surfaces immediately as a
// *StatusError for the caller to restart from the first page.
func (c *Client) Enumerate(ctx context.Context, req EnumerateRequest) (*EnumerateResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding enumerate request: %w", err)
	}
	var out EnumerateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/enumerate", body, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ReplicateRecord is one journal record shipped between cluster nodes:
// the owner pushes it to replicas after committing locally (POST
// /v1/replicate), and catch-up pulls return the same shape. Snapshot is
// the internal/persist snapshot encoding of the database (base64 in
// JSON); it is empty for drops.
type ReplicateRecord struct {
	Op       string `json:"op"` // "register" | "drop"
	Name     string `json:"name"`
	Gen      uint64 `json:"gen"`
	UnixNano int64  `json:"unix_nano,omitempty"`
	Snapshot []byte `json:"snapshot,omitempty"`
	// Stats is the owner's encoded statistics catalog for this
	// registration (internal/stats JSON), shipped so replicas cost plans
	// from the same numbers and EXPLAIN agrees cluster-wide. Optional:
	// absent on drops and on ships from stats-disabled owners.
	Stats []byte `json:"stats,omitempty"`
	// Digest is the owner's encoded content digest (internal/integrity)
	// for this registration. Replicas verify the decoded snapshot against
	// it before installing and reject the record on mismatch, so a
	// corrupted ship can never silently install divergent state. Optional
	// for wire compatibility with older owners; absent on drops.
	Digest []byte `json:"digest,omitempty"`
}

// ReplicateResult reports what the replica did with a shipped record.
type ReplicateResult struct {
	Applied bool   `json:"applied"`
	Reason  string `json:"reason,omitempty"` // e.g. "stale" when the replica is already at or past Gen
}

// Replicate ships one journal record to a replica. Retried: apply is
// generation-monotonic on the receiving side (a record at or below the
// replica's current generation is a no-op), so re-sending after a timeout
// can never double-apply or reorder.
func (c *Client) Replicate(ctx context.Context, rec ReplicateRecord) (*ReplicateResult, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("client: encoding replicate record: %w", err)
	}
	var out ReplicateResult
	if err := c.do(ctx, http.MethodPost, "/v1/replicate", body, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PullRequest asks an owner for the replication records the caller is
// missing. Node is the caller's cluster ID; Have maps each database the
// caller holds (among those the callee owns) to its local generation.
type PullRequest struct {
	Node string            `json:"node"`
	Have map[string]uint64 `json:"have"`
}

// PullResponse is the owner's catch-up answer: full records for every
// owned database the caller should hold but is missing or behind on, and
// the names the caller reported that the owner no longer has (the caller
// drops them).
type PullResponse struct {
	Records []ReplicateRecord `json:"records"`
	Absent  []string          `json:"absent,omitempty"`
}

// ReplicatePull performs one catch-up round-trip against an owner.
// Retried (read-only on the owner; apply on the caller is monotonic).
func (c *Client) ReplicatePull(ctx context.Context, req PullRequest) (*PullResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding pull request: %w", err)
	}
	var out PullResponse
	if err := c.do(ctx, http.MethodPost, "/v1/replicate/pull", body, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ExplainRequest is the POST /v1/explain body. Execute asks the server
// to also run the query and attach measured per-stage times next to the
// planner's estimates.
type ExplainRequest struct {
	DB        string `json:"db"`
	Query     string `json:"query"`
	Strategy  string `json:"strategy,omitempty"`
	Execute   bool   `json:"execute,omitempty"`
	TimeoutMs int64  `json:"timeout_ms,omitempty"`
	Forwarded bool   `json:"fwd,omitempty"`
}

// ExplainStage is one plan stage with the planner's cost estimate and,
// when the query was executed, the traced actual self-time.
type ExplainStage struct {
	Stage       string  `json:"stage"`
	Detail      string  `json:"detail,omitempty"`
	Cost        float64 `json:"cost"`
	EstimatedMs float64 `json:"estimated_ms"`
	ActualMs    float64 `json:"actual_ms,omitempty"`
	Measured    bool    `json:"measured,omitempty"`
}

// ExplainResponse is the chosen plan with its cost breakdown. Decision
// stays raw JSON so the client does not depend on the planner's shape.
type ExplainResponse struct {
	Strategy        string          `json:"strategy"`
	StrategySource  string          `json:"strategy_source"` // "planner" | "fixed-rule" | "requested"
	QueryHash       string          `json:"query_hash"`
	Generation      uint64          `json:"generation"`
	StatsGeneration uint64          `json:"stats_generation,omitempty"`
	Plan            string          `json:"plan"`
	Stages          []ExplainStage  `json:"stages,omitempty"`
	Decision        json.RawMessage `json:"decision,omitempty"`
	Executed        bool            `json:"executed,omitempty"`
	Sat             *bool           `json:"sat,omitempty"`
	ElapsedMs       float64         `json:"elapsed_ms"`
}

// Explain asks the server which plan it would (or did) run for a query.
// Retried (read-only; execute=true evaluations are idempotent).
func (c *Client) Explain(ctx context.Context, req ExplainRequest) (*ExplainResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding explain request: %w", err)
	}
	var out ExplainResponse
	if err := c.do(ctx, http.MethodPost, "/v1/explain", body, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the statistics catalog of a database held by the server.
// Retried (read-only). The shape is internal/stats' Catalog JSON, kept
// raw here.
func (c *Client) Stats(ctx context.Context, db string) (json.RawMessage, error) {
	var out json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/stats/"+url.PathEscape(db), nil, true, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// IntegrityInfo is the GET /v1/integrity/{db} response: the node's local
// generation and content digest for one database, plus its quarantine
// state. The anti-entropy sweep compares these pairs across holders.
type IntegrityInfo struct {
	DB          string `json:"db"`
	Gen         uint64 `json:"gen"`
	Digest      string `json:"digest"` // %016x content sum
	Quarantined bool   `json:"quarantined"`
}

// Integrity fetches a node's (generation, digest) pair for one database.
// Retried (read-only).
func (c *Client) Integrity(ctx context.Context, db string) (*IntegrityInfo, error) {
	var out IntegrityInfo
	if err := c.do(ctx, http.MethodGet, "/v1/integrity/"+url.PathEscape(db), nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Measures reports a query's structural measures. Retried (read-only).
func (c *Client) Measures(ctx context.Context, queryText string) (map[string]any, error) {
	body, err := json.Marshal(map[string]string{"query": queryText})
	if err != nil {
		return nil, fmt.Errorf("client: encoding measures request: %w", err)
	}
	var out map[string]any
	if err := c.do(ctx, http.MethodPost, "/v1/measures", body, true, &out); err != nil {
		return nil, err
	}
	return out, nil
}
