package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestStreamingEnumerationShape runs A10 and checks the acceptance
// criterion behind the streaming subsystem: on both regimes the
// first-witness latency improves at least 5× over materializing, and
// the peak reserved bytes drop measurably. The thresholds are far below
// the recorded EXPERIMENTS.md numbers (10³×-scale) so the test stays
// robust on slow or heavily loaded hosts.
func TestStreamingEnumerationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping the materializing baseline in -short mode")
	}
	tb := StreamingEnumeration(1)
	if len(tb.Rows) != 2 {
		t.Fatalf("A10 rows = %d, want 2 (E1 and E8 regimes)", len(tb.Rows))
	}
	factor := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "×"), 64)
		if err != nil {
			t.Fatalf("unparsable factor cell %q: %v", cell, err)
		}
		return v
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Headers) {
			t.Fatalf("row width %d ≠ headers %d: %v", len(r), len(tb.Headers), r)
		}
		if speedup := factor(r[4]); speedup < 5 {
			t.Errorf("%s: first-witness speedup %.1f×, want ≥5×", r[0], speedup)
		}
		if ratio := factor(r[7]); ratio <= 1 {
			t.Errorf("%s: peak reserved bytes ratio %.1f×, want a measurable reduction (>1×)", r[0], ratio)
		}
	}
}
