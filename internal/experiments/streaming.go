package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/core"
	"ecrpq/internal/govern"
	"ecrpq/internal/graphdb"
	"ecrpq/internal/invariant"
	"ecrpq/internal/query"
	"ecrpq/internal/workload"
)

// meteredRun executes fn under a fresh unlimited broker and reports the
// best-of-reps wall time together with the reservation's high-water
// mark. Peak is taken from the last rep; it is deterministic for a
// fixed instance, unlike the timing.
func meteredRun(reps int, fn func(ctx context.Context)) (time.Duration, int64) {
	best := time.Duration(0)
	var peak int64
	for i := 0; i < reps; i++ {
		broker := govern.NewBroker(0)
		res, err := broker.Reserve(1)
		invariant.NoError(err, "experiments: reserving on an unlimited broker")
		ctx := govern.NewContext(context.Background(), res)
		d := timeIt(func() { fn(ctx) })
		peak = res.Peak()
		res.Release()
		if i == 0 || d < best {
			best = d
		}
	}
	return best, peak
}

func kib(n int64) string { return fmt.Sprintf("%.1f", float64(n)/1024.0) }

// StreamingEnumeration — A10: the satisfiable fast path needs one tuple
// of the Lemma 4.3 R' sweep, not the whole V^t table. Compare
// first-witness latency and peak reserved bytes between the
// materializing pipeline (Materialize + EvaluateContext, the plan-cache
// path) and the streaming pipeline (EvaluateContext with no
// materialization, which pulls lazy sweep iterators through the
// pipelined CQ join and stops at the first witness) on the E1 and E8
// regimes.
func StreamingEnumeration(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:    "A10",
		Title: "Streaming enumeration: first witness without materialization",
		Claim: "design choice: satisfiability is enumerate-stop-at-first-tuple — lazy R' sweep iterators cut first-witness latency and peak reserved bytes vs materializing the V^t table",
		Headers: []string{"instance", "sat", "materialize (ms)", "stream (ms)", "speedup",
			"mat peak (KiB)", "stream peak (KiB)", "peak ratio"},
	}
	type instance struct {
		name  string
		build func() (*graphdb.DB, *query.Query)
		opts  core.Options
	}
	instances := []instance{
		{"E1 pair-chain k=4, |V|=40", func() (*graphdb.DB, *query.Query) {
			rng := rand.New(rand.NewSource(seed))
			return workload.RandomDB(rng, a, 40, 120), workload.PairChainQuery(a, 4)
		}, core.Options{Strategy: core.Reduction}},
		{"E8 fan t=3, |V|=17", func() (*graphdb.DB, *query.Query) {
			rng := rand.New(rand.NewSource(seed))
			return workload.RandomDB(rng, a, 17, 34), workload.FanQuery(a, 3)
		}, core.Options{Strategy: core.Reduction, MaxReductionTracks: 8}},
	}
	// The materializing runs are multi-second, so one rep's timing noise
	// is negligible; the sub-millisecond streaming runs take best-of-5.
	const matReps, streamReps = 1, 5
	for _, in := range instances {
		db, q := in.build()
		p, err := core.Prepare(q, in.opts)
		invariant.NoError(err, "experiments: A10 prepare")

		var matSat bool
		matTime, matPeak := meteredRun(matReps, func(ctx context.Context) {
			mat, err := p.Materialize(ctx, db)
			invariant.NoError(err, "experiments: A10 materialize")
			res, err := p.EvaluateContext(ctx, db, mat)
			invariant.NoError(err, "experiments: A10 materialized evaluate")
			matSat = res.Sat
		})
		var streamSat bool
		streamTime, streamPeak := meteredRun(streamReps, func(ctx context.Context) {
			res, err := p.EvaluateContext(ctx, db, nil)
			invariant.NoError(err, "experiments: A10 streaming evaluate")
			streamSat = res.Sat
		})
		invariant.Assert(matSat == streamSat, "experiments: A10 streaming and materializing disagree on sat")

		speedup := float64(matTime) / float64(max64(int64(streamTime), 1))
		ratio := float64(matPeak) / float64(max64(streamPeak, 1))
		t.Rows = append(t.Rows, []string{
			in.name, fmt.Sprint(streamSat), ms(matTime), ms(streamTime),
			fmt.Sprintf("%.1f×", speedup), kib(matPeak), kib(streamPeak),
			fmt.Sprintf("%.1f×", ratio),
		})
	}
	t.Notes = append(t.Notes,
		"Streaming times are best-of-"+fmt.Sprint(streamReps)+" wall clock; peaks are Reservation.Peak() under an unlimited govern broker, so both columns count the same ledger charges. The materializing row pays for the full R' sweep table before the CQ join sees a tuple; the streaming row charges only the iterator chunks pulled before the first witness.")
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
