package experiments

import (
	"strconv"
	"testing"
)

// TestOverloadShape runs A9 and sanity-checks the tallies: rows are
// well-formed, every request is accounted for in exactly one outcome
// column, and the shed-on run actually refused some low-priority work.
// Latency and throughput columns are load-dependent and deliberately
// not asserted.
func TestOverloadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping the saturating overload workload in -short mode")
	}
	tb := Overload(1)
	if len(tb.Rows) != 2 {
		t.Fatalf("A9 rows = %d, want 2 (shed off / shed on)", len(tb.Rows))
	}
	atoi := func(s string) int {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("non-integer cell %q", s)
		}
		return n
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Headers) {
			t.Fatalf("row width %d ≠ headers %d", len(r), len(tb.Headers))
		}
		requests, ok := atoi(r[1]), atoi(r[2])
		shed429, queue429 := atoi(r[3]), atoi(r[4])
		if ok+shed429+queue429 > requests {
			t.Errorf("shed=%s: outcomes %d+%d+%d exceed %d requests", r[0], ok, shed429, queue429, requests)
		}
		if ok == 0 {
			t.Errorf("shed=%s: nothing succeeded under the overload workload", r[0])
		}
	}
	if shedOn := tb.Rows[1]; atoi(shedOn[3]) == 0 {
		t.Error("shed-on run refused no low-priority work — the shedder never engaged")
	}
}
