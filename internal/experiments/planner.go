package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/core"
	"ecrpq/internal/graphdb"
	"ecrpq/internal/invariant"
	"ecrpq/internal/planner"
	"ecrpq/internal/query"
	"ecrpq/internal/reductions"
	"ecrpq/internal/stats"
	"ecrpq/internal/workload"
)

// plannerWork collapses the per-strategy work counters into one
// comparable unit count: generic evaluation is dominated by
// node-variable assignments and component product checks, reduction by
// materialized R' tuples. The counters are deterministic for a fixed
// instance, unlike wall time, so the regression bar asserts on them.
func plannerWork(s core.Stats) int {
	return s.NodeAssignments + s.ProductChecks + s.CQTuples
}

// decidedEval runs the server's plan-cache pipeline under a resolved
// decision: prepare with the concrete strategy, materialize the R'
// tables when it is Reduction (the cached-materialization path), and
// evaluate with the decision's ordering/pushdown hints. Both arms of
// the ablation go through this one executor, so the measured difference
// is the decision itself, not the pipeline.
func decidedEval(ctx context.Context, db *graphdb.DB, q *query.Query, dec *planner.Decision, opts core.Options) *core.Result {
	runOpts := opts
	runOpts.Strategy = dec.Strategy
	p, err := core.Prepare(q, runOpts)
	invariant.NoError(err, "experiments: A12 prepare")
	var mat *core.Materialization
	if dec.Strategy == core.Reduction {
		mat, err = p.Materialize(ctx, db)
		invariant.NoError(err, "experiments: A12 materialize")
	}
	var hints *core.PlanHints
	if dec.Strategy == core.Generic && !dec.UsedFallback {
		hints = &core.PlanHints{ComponentOrder: dec.ComponentOrder}
		if dec.Pushdown {
			hints.Candidates = p.PushdownCandidates(db)
		}
	}
	res, err := p.EvaluateContextHinted(ctx, db, mat, hints)
	invariant.NoError(err, "experiments: A12 evaluate")
	if mat != nil {
		// The streamed evaluation over a cached materialization reports
		// only tuples it touched; charge the full build like the server's
		// ledger does.
		res.Stats.CQTuples = mat.Tuples()
	}
	return res
}

// PlannerAblation — A12: the cost-based planner vs the fixed
// track-count auto rule on the E1, E3 and E8 regimes. The fixed rule
// only sees track counts; on the E8 fan regime (t=3 tracks, within
// MaxReductionTracks) it picks Reduction and pays the |V|^t R' sweep,
// while the cost model sees two node variables and |V|^2 assignments
// and picks Generic. On E1 and E3 both rules agree, so the planner must
// not regress there.
func PlannerAblation(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:    "A12",
		Title: "Ablation: cost-based planner vs fixed auto rule",
		Claim: "design choice: statistics-backed cost model beats the track-count rule where track counts mislead (E8 fan), with no regression where they don't (E1, E3)",
		Headers: []string{"instance", "fixed / planner strategy", "sat", "fixed (ms)", "planner (ms)",
			"fixed work", "planner work", "work ratio"},
	}
	type instance struct {
		name    string
		build   func() (*graphdb.DB, *query.Query)
		opts    core.Options
		mustWin bool // the ≥1.5× acceptance row
	}
	instances := []instance{
		{"E1 pair-chain k=4, |V|=40", func() (*graphdb.DB, *query.Query) {
			rng := rand.New(rand.NewSource(seed))
			return workload.RandomDB(rng, a, 40, 120), workload.PairChainQuery(a, 4)
		}, core.Options{Strategy: core.Auto}, false},
		{"E3 big-hyperedge n=4", func() (*graphdb.DB, *query.Query) {
			rng := rand.New(rand.NewSource(seed))
			in := workload.PlantedINE(rng, a, 4, 3, true)
			db, q, err := reductions.BigHyperedge(in)
			invariant.NoError(err, "experiments: A12 BigHyperedge reduction")
			return db, q
		}, core.Options{Strategy: core.Auto, EagerMerge: true}, false},
		{"E8 fan t=3, |V|=17", func() (*graphdb.DB, *query.Query) {
			rng := rand.New(rand.NewSource(seed))
			return workload.RandomDB(rng, a, 17, 34), workload.FanQuery(a, 3)
		}, core.Options{Strategy: core.Auto}, true},
	}
	ctx := context.Background()
	won := false
	for _, in := range instances {
		db, q := in.build()
		plan, err := core.Explain(q, in.opts)
		invariant.NoError(err, "experiments: A12 explain")

		// Planner off: Resolve with a nil catalog is exactly the fixed
		// core.AutoStrategy track-count rule, no hints.
		fixedDec := planner.Resolve(nil, plan, in.opts, planner.Config{})
		var fixedRes *core.Result
		fixedTime := timeIt(func() { fixedRes = decidedEval(ctx, db, q, fixedDec, in.opts) })

		// Planner on: statistics catalog + cost model + hints. The stats
		// computation is timed inside the planner column — in the server it
		// is amortized (computed at registration, decision memoized per
		// generation), so this is the worst case for the planner.
		var planRes *core.Result
		var dec *planner.Decision
		planTime := timeIt(func() {
			cat, err := stats.Compute(ctx, db, 1)
			invariant.NoError(err, "experiments: A12 stats compute")
			dec = planner.Resolve(cat, plan, in.opts, planner.Config{})
			planRes = decidedEval(ctx, db, q, dec, in.opts)
		})
		invariant.Assert(!dec.UsedFallback, "experiments: A12 planner fell back despite a catalog")
		invariant.Assert(fixedRes.Sat == planRes.Sat,
			"experiments: A12 planner-on and planner-off disagree on sat")

		fixedWork := plannerWork(fixedRes.Stats)
		planWork := plannerWork(planRes.Stats)
		ratio := float64(fixedWork) / float64(maxIntA12(planWork, 1))
		if in.mustWin {
			invariant.Assert(fixedDec.Strategy == core.Reduction,
				"experiments: A12 fixed rule should pick reduction on the fan regime")
			invariant.Assert(dec.Strategy == core.Generic,
				"experiments: A12 cost model should pick generic on the fan regime")
			invariant.Assert(ratio >= 1.5,
				"experiments: A12 planner win below the 1.5× acceptance bar")
			won = true
		} else {
			// No-regression bar: where the rules agree the hint machinery
			// may only shrink the search (pushdown prunes candidates,
			// ordering permutes components), never grow it.
			invariant.Assert(dec.Strategy == fixedDec.Strategy,
				"experiments: A12 strategies should agree off the fan regime")
			invariant.Assert(planWork <= fixedWork,
				"experiments: A12 planner-on did strictly more work than the fixed rule")
		}

		t.Rows = append(t.Rows, []string{
			in.name,
			fmt.Sprintf("%s / %s", fixedDec.Strategy, dec.Strategy),
			fmt.Sprint(planRes.Sat), ms(fixedTime), ms(planTime),
			fmt.Sprint(fixedWork), fmt.Sprint(planWork), fmt.Sprintf("%.1f×", ratio),
		})
	}
	invariant.Assert(won, "experiments: A12 acceptance row missing")
	t.Notes = append(t.Notes,
		"Both arms run the identical plan-cache pipeline (prepare, materialize R' when reduction, evaluate); only the decision differs, so the gap is the planner's. Work units are deterministic counters (generic: node assignments + product checks; reduction: materialized R' tuples), making the ≥1.5× bar on the E8 row and the no-regression bar on E1/E3 timing-noise free. The planner column also pays stats.Compute + planner.Resolve inline — the server amortizes both (stats at registration, decisions memoized per generation).")
	return t
}

func maxIntA12(a, b int) int {
	if a > b {
		return a
	}
	return b
}
