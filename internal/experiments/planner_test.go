package experiments

import (
	"fmt"
	"testing"
)

// TestPlannerAblationBar runs A12 and checks the acceptance criteria:
// the invariants inside PlannerAblation enforce the ≥1.5× work bar on
// the E8 fan regime and the no-regression bar on E1/E3 (an invariant
// violation panics, failing the test); here we additionally pin the
// table shape and that the win row actually flipped strategies.
func TestPlannerAblationBar(t *testing.T) {
	tb := PlannerAblation(1)
	if tb.ID != "A12" {
		t.Fatalf("table ID = %q, want A12", tb.ID)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("A12 rows = %d, want 3 (E1, E3 and E8 regimes)", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Headers) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(tb.Headers))
		}
	}
	fan := tb.Rows[2]
	if fan[1] != "reduction / generic" {
		t.Fatalf("fan regime strategies = %q, want fixed reduction flipped to generic", fan[1])
	}
	// The ratio cell is "%.1f×"; re-parse and re-check the bar so a
	// future reformat of the invariant can't silently drop it.
	var ratio float64
	if _, err := fmt.Sscanf(fan[len(fan)-1], "%f", &ratio); err != nil {
		t.Fatalf("cannot parse work ratio %q: %v", fan[len(fan)-1], err)
	}
	if ratio < 1.5 {
		t.Fatalf("fan regime work ratio %.2f below the 1.5× acceptance bar", ratio)
	}
}

// TestPlannerAblationSeeds re-runs the ablation across seeds: the
// strategy flip on the fan regime is a structural property of the cost
// model, not a lucky instance.
func TestPlannerAblationSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed ablation is slow")
	}
	for _, seed := range []int64{2, 7} {
		tb := PlannerAblation(seed)
		if got := tb.Rows[2][1]; got != "reduction / generic" {
			t.Fatalf("seed %d: fan regime strategies = %q", seed, got)
		}
	}
}
