package experiments

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"ecrpq/internal/invariant"
	"ecrpq/internal/server"
)

// overloadDBText is a dense two-letter database: every vertex has an a-
// and a b-successor, so the 2-track equality sweep touches all n² source
// pairs.
func overloadDBText(n int) string {
	var sb bytes.Buffer
	sb.WriteString("alphabet a b\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "v%d a v%d\n", i, (i*7+1)%n)
		fmt.Fprintf(&sb, "v%d b v%d\n", i, (i*7+2)%n)
	}
	return sb.String()
}

// overloadHardQuery is a 2-track equality component whose Lemma 4.3
// materialization sweeps the whole database. The variable names carry a
// serial number so every request is a distinct plan-cache key: each hard
// request pays the full materialization, which is what makes it a
// memory- and worker-hungry "background" job worth shedding.
func overloadHardQuery(i int) string {
	return fmt.Sprintf("alphabet a b\nx%d -[$p1]-> y%d\nx%d -[$p2]-> y%d\nrel eq(p1, p2)\n", i, i, i, i)
}

// overloadEasyQuery is a plain one-edge reachability query — the
// latency-sensitive "interactive" traffic class.
const overloadEasyQuery = "alphabet a b\nx -[ab]-> y\n"

// overloadOutcome aggregates one mode's run.
type overloadOutcome struct {
	ok, shed429, other429, other int
	easyLatencies                []time.Duration
	elapsed                      time.Duration
	peakReserved                 int64
}

// runOverload drives a saturating mixed workload (clients × iters
// requests, one third hard/low-priority, two thirds easy/normal) against
// an in-process daemon and tallies outcomes per traffic class.
func runOverload(shed bool, clients, iters, dbN int) overloadOutcome {
	s := server.New(server.Config{
		Workers:           4,
		QueueDepth:        8,
		MemBudgetBytes:    16 << 20,
		QueryReserveBytes: 256 << 10,
		ShedEnabled:       shed,
		ShedQueueWait:     5 * time.Millisecond,
		ShedMemFraction:   0.6,
		TraceSampleEvery:  -1,
		Logger:            log.New(io.Discard, "", 0),
	})
	post := func(path, body string, hdr map[string]string) int {
		req := httptest.NewRequest("POST", path, bytes.NewBufferString(body))
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec.Code
	}
	code := post("/v1/dbs/g", overloadDBText(dbN), nil)
	invariant.Assert(code == http.StatusOK, "experiments: A9 database registration failed")

	var (
		mu  sync.Mutex
		out overloadOutcome
		wg  sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				serial := c*iters + i
				hard := serial%3 == 0
				var code int
				var lat time.Duration
				if hard {
					body := fmt.Sprintf(`{"db":"g","query":%q,"strategy":"reduction"}`, overloadHardQuery(serial))
					code = post("/v1/query", body, map[string]string{"X-Ecrpq-Priority": "low"})
				} else {
					t0 := time.Now()
					code = post("/v1/query", fmt.Sprintf(`{"db":"g","query":%q}`, overloadEasyQuery), nil)
					lat = time.Since(t0)
				}
				mu.Lock()
				switch code {
				case http.StatusOK:
					out.ok++
					if !hard {
						out.easyLatencies = append(out.easyLatencies, lat)
					}
				case http.StatusTooManyRequests:
					if hard {
						out.shed429++
					} else {
						out.other429++
					}
				default:
					out.other++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	out.elapsed = time.Since(start)
	out.peakReserved = s.GovernStats().PeakBytes
	return out
}

// p99 returns the 99th-percentile of the sample set (nearest-rank).
func p99(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*99 + 99) / 100
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// Overload — A9: drive the daemon past saturation with a mixed workload
// (low-priority memory-hungry materializations alongside interactive
// point queries) with overload shedding off and on. Shedding converts
// low-priority work into fast 429s while the interactive class keeps its
// throughput and tail latency under pressure.
func Overload(seed int64) *Table {
	_ = seed // the workload is a fixed schedule; timings vary, counts don't depend on seed
	t := &Table{
		ID:    "A9",
		Title: "Overload shedding: mixed workload past saturation (ecrpqd)",
		Claim: "adaptive shedding sacrifices low-priority work to hold interactive throughput and p99 under overload",
		Headers: []string{"shed", "requests", "ok", "shed/denied 429", "queue 429", "easy p99 (ms)",
			"easy ok/s", "peak reserved (KiB)"},
	}
	const clients, iters, dbN = 10, 18, 26
	for _, shed := range []bool{false, true} {
		o := runOverload(shed, clients, iters, dbN)
		easyOK := len(o.easyLatencies)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(shed),
			fmt.Sprint(clients * iters),
			fmt.Sprint(o.ok),
			fmt.Sprint(o.shed429),
			fmt.Sprint(o.other429),
			fmt.Sprintf("%.1f", float64(p99(o.easyLatencies))/float64(time.Millisecond)),
			fmt.Sprintf("%.1f", float64(easyOK)/o.elapsed.Seconds()),
			fmt.Sprint(o.peakReserved >> 10),
		})
	}
	t.Notes = append(t.Notes,
		"10 clients × 18 requests against a 4-worker daemon (queue depth 8, 16 MiB memory budget); every third request is a cold 2-track materialization sent with X-Ecrpq-Priority: low, the rest are one-edge point queries. \"shed/denied 429\" counts hard requests refused (SHED/RESOURCE_EXHAUSTED/OVERLOADED), \"queue 429\" easy ones. With shedding on, the shedder's queue-wait and reserved-memory signals turn the hard class away at admission instead of letting it fill the queue, so the easy class stops losing requests to queue overflow and completes at several times the effective throughput; the broker keeps the reserved-byte peak under the budget in both modes.")
	return t
}
