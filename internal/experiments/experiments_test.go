package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestSlope(t *testing.T) {
	// y = x^2 exactly → slope 2.
	xs := []float64{1, 2, 4, 8}
	ys := []float64{1, 4, 16, 64}
	if got := slope(xs, ys); got < 1.99 || got > 2.01 {
		t.Errorf("slope = %v, want 2", got)
	}
	// Constant y → slope 0.
	if got := slope(xs, []float64{5, 5, 5, 5}); got < -0.01 || got > 0.01 {
		t.Errorf("slope = %v, want 0", got)
	}
	// Degenerate single point.
	if got := slope([]float64{2}, []float64{3}); got != 0 {
		t.Errorf("degenerate slope = %v", got)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{
		ID: "EX", Title: "demo", Claim: "c",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"note"},
	}
	md := tb.Markdown()
	for _, want := range []string{"### EX", "| a | b |", "| 1 | 2 |", "note"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

// Each experiment must run and produce a plausible table. Use small seeds;
// keep the slow ones under -short control.
func TestExperimentsRun(t *testing.T) {
	fast := map[string]func() *Table{
		"E1":  func() *Table { return E1(1) },
		"E1b": func() *Table { return E1b(1) },
		"E4":  func() *Table { return E4(1) },
		"E7":  func() *Table { return E7() },
		"E8":  func() *Table { return E8(1) },
		"E9":  func() *Table { return E9(1) },
		"E10": func() *Table { return E10(1) },
		"E11": func() *Table { return E11(1) },
		"E12": func() *Table { return E12(1) },
		"A1":  func() *Table { return AblationStrategies(1) },
		"A2":  func() *Table { return AblationCQEval(1) },
		"A3":  func() *Table { return AblationTreewidth() },
	}
	for name, fn := range fast {
		tb := fn()
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", name)
		}
		for _, r := range tb.Rows {
			if len(r) != len(tb.Headers) {
				t.Errorf("%s: row width %d ≠ headers %d", name, len(r), len(tb.Headers))
			}
		}
	}
}

func TestSlowExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow regime experiments in -short mode")
	}
	for name, fn := range map[string]func() *Table{
		"E2": func() *Table { return E2(1) },
		"E3": func() *Table { return E3(1) },
		"E5": func() *Table { return E5(1) },
		"E6": func() *Table { return E6(1) },
	} {
		tb := fn()
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", name)
		}
	}
}

// TestStageAttributionShape runs A8 and sanity-checks the attribution:
// rows are well-formed, shares are percentages, and on the E3 row the
// merge+product stages account for the bulk of the time (the PSPACE
// regime's predicted cost driver). The threshold here is deliberately
// looser than the ≥80% recorded in EXPERIMENTS.md to keep the test
// robust on slow or heavily loaded hosts.
func TestStageAttributionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping traced attribution in -short mode")
	}
	tb := StageAttribution(1)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Headers) {
			t.Fatalf("row width %d ≠ headers %d", len(r), len(tb.Headers))
		}
		sum := 0.0
		for _, cell := range r[3:] {
			var pct float64
			if _, err := fmt.Sscan(cell, &pct); err != nil {
				t.Fatalf("share cell %q: %v", cell, err)
			}
			if pct < 0 || pct > 100.01 {
				t.Errorf("share %v out of range", pct)
			}
			sum += pct
		}
		if sum > 100.5 {
			t.Errorf("%s: shares sum to %.1f%% > 100%%", r[0], sum)
		}
	}
	// E3 row: prepare+merge % (col 3) + product % (col 4) dominate.
	var mergePct, productPct float64
	fmt.Sscan(tb.Rows[1][3], &mergePct)
	fmt.Sscan(tb.Rows[1][4], &productPct)
	if mergePct+productPct < 50 {
		t.Errorf("E3 merge+product share = %.1f%%, expected the dominant stage", mergePct+productPct)
	}
}

func TestE7MergeGrowthShape(t *testing.T) {
	tb := E7()
	// Merged states must be nondecreasing in ℓ and ≤ 3^ℓ.
	prev := 0
	pow := 1
	for i, r := range tb.Rows {
		var st int
		if _, err := fmt.Sscan(r[2], &st); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		pow *= 3
		if st < prev {
			t.Errorf("merged states decreased: %d after %d", st, prev)
		}
		if st > pow {
			t.Errorf("merged states %d exceed 3^%d", st, i+1)
		}
		prev = st
	}
}

func TestAblationParallelRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping parallel ablation in -short mode")
	}
	tb := AblationParallel(1)
	if len(tb.Rows) != 4 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestAblationBaselineRuns(t *testing.T) {
	tb := AblationBaseline(1)
	if len(tb.Rows) != 3 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}
