// Package experiments implements the reproduction experiment suite: one
// experiment per case of the characterization theorems (Theorems 3.1 and
// 3.2) and per lemma-level construction, as indexed in DESIGN.md. The paper
// is a theory paper without measured tables, so each experiment
// demonstrates the predicted complexity regime empirically: which parameter
// drives growth, and whether growth is polynomial or exponential.
//
// All experiments are deterministic (fixed seeds) and sized to finish in
// seconds.
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/core"
	"ecrpq/internal/cq"
	"ecrpq/internal/graphdb"
	"ecrpq/internal/invariant"
	"ecrpq/internal/query"
	"ecrpq/internal/reductions"
	"ecrpq/internal/synchro"
	"ecrpq/internal/trace"
	"ecrpq/internal/twolevel"
	"ecrpq/internal/workload"
)

// Table is one experiment's result: a titled grid of rows.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper result being demonstrated
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "*Paper claim:* %s\n\n", t.Claim)
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, r := range t.Rows {
		sb.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n%s\n", n)
	}
	sb.WriteString("\n")
	return sb.String()
}

// timeIt measures fn's wall-clock time.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

// slope fits log(y) against log(x) by least squares (the growth exponent).
func slope(xs, ys []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(math.Max(ys[i], 1e-9))
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

func mustEval(db *graphdb.DB, q *query.Query, opts core.Options) *core.Result {
	res, err := core.Evaluate(db, q, opts)
	invariant.NoError(err, "experiments: evaluation failed")
	return res
}

// E1 — Theorem 3.2(3): bounded cc_vertex, cc_hedge, treewidth ⇒ polynomial
// time. Fixed pair-chain query family, database-size sweep; the fitted
// growth exponent should be a small constant.
func E1(seed int64) *Table {
	a := alphabet.Lower(2)
	q := workload.PairChainQuery(a, 4)
	m := twolevel.QueryMeasures(q)
	t := &Table{
		ID:      "E1",
		Title:   "Tractable regime: bounded measures, database sweep",
		Claim:   "Thm 3.2(3): cc_vertex, cc_hedge, tw all bounded ⇒ eval in PTIME",
		Headers: []string{"|V|", "|E|", "sat", "time (ms)", "CQ tuples"},
	}
	var xs, ys []float64
	for _, n := range []int{8, 12, 18, 27, 40} {
		rng := rand.New(rand.NewSource(seed))
		db := workload.RandomDB(rng, a, n, 3*n)
		var res *core.Result
		d := timeIt(func() { res = mustEval(db, q, core.Options{Strategy: core.Reduction}) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(db.NumEdges()), fmt.Sprint(res.Sat), ms(d), fmt.Sprint(res.Stats.CQTuples),
		})
		xs = append(xs, float64(n))
		ys = append(ys, float64(d.Microseconds()))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Query: pair-chain, k=4 path variables; measures cc_vertex=%d cc_hedge=%d tw≤%d. Fitted time exponent in |V|: **%.2f** (expected ≈ 2·cc_vertex = 4; polynomial, as predicted).",
		m.CCVertex, m.CCHedge, m.TreewidthUpper, slope(xs, ys)))
	return t
}

// E1b — same regime, query-size sweep at fixed database: still polynomial.
func E1b(seed int64) *Table {
	a := alphabet.Lower(2)
	rng := rand.New(rand.NewSource(seed))
	db := workload.RandomDB(rng, a, 18, 54)
	t := &Table{
		ID:      "E1b",
		Title:   "Tractable regime: bounded measures, query-size sweep",
		Claim:   "Thm 3.2(3): combined complexity is polynomial (query and data)",
		Headers: []string{"k (path vars)", "sat", "time (ms)"},
	}
	var xs, ys []float64
	for _, k := range []int{2, 4, 8, 12} {
		q := workload.PairChainQuery(a, k)
		var res *core.Result
		d := timeIt(func() { res = mustEval(db, q, core.Options{Strategy: core.Reduction}) })
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), fmt.Sprint(res.Sat), ms(d)})
		xs = append(xs, float64(k))
		ys = append(ys, float64(d.Microseconds()))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("Fitted time exponent in k: **%.2f** (polynomial).", slope(xs, ys)))
	return t
}

// E2 — Theorem 3.2(2): bounded cc, unbounded treewidth ⇒ NP (not PTIME).
// Clique-query family: polynomial in the database, super-polynomial in the
// clique size k (treewidth k−1).
func E2(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "E2",
		Title:   "NP regime: clique queries (unbounded treewidth)",
		Claim:   "Thm 3.2(2): bounded cc, unbounded tw ⇒ eval in NP, not PTIME (unless W[1]=FPT)",
		Headers: []string{"k (clique)", "tw(query)", "|V|", "sat", "time (ms)"},
	}
	n := 16
	for _, k := range []int{2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		db := buildCliqueDB(rng, a, n, k)
		q := workload.CliqueQuery(a, k)
		m := twolevel.QueryMeasures(q)
		var res *core.Result
		d := timeIt(func() { res = mustEval(db, q, core.Options{Strategy: core.Reduction}) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(m.TreewidthUpper), fmt.Sprint(n), fmt.Sprint(res.Sat), ms(d),
		})
	}
	t.Notes = append(t.Notes,
		"Growth is driven by query treewidth k−1 (the CQ DP is |V|^{O(tw)}), matching the NP lower bound family of Thm 3.2(2); data growth at fixed k stays polynomial (see E4).")
	return t
}

// buildCliqueDB builds a random graph over symbol 0 with a planted k-clique
// (including self-loops not required; clique edges in both directions).
func buildCliqueDB(rng *rand.Rand, a *alphabet.Alphabet, n, k int) *graphdb.DB {
	db := graphdb.New(a)
	for i := 0; i < n; i++ {
		db.MustAddVertex("")
	}
	for i := 0; i < n; i++ {
		db.MustAddEdge(rng.Intn(n), 0, rng.Intn(n))
	}
	verts := rng.Perm(n)[:k]
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j {
				db.MustAddEdge(verts[i], 0, verts[j])
			}
		}
	}
	return db
}

// E3 — Theorem 3.2(1): unbounded cc ⇒ PSPACE. Lemma 5.1 case-1 instances:
// the product-state count explored by the generic evaluator grows
// exponentially with the number of languages (component size).
func E3(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "E3",
		Title:   "PSPACE regime: one big component (INE instances)",
		Claim:   "Thm 3.2(1) via Lemma 5.1: unbounded cc_vertex ⇒ PSPACE-complete",
		Headers: []string{"n (languages)", "cc_vertex", "sat", "time (ms)", "merged NFA states"},
	}
	for _, n := range []int{2, 3, 4, 5, 6} {
		rng := rand.New(rand.NewSource(seed))
		in := workload.PlantedINE(rng, a, n, 3, true)
		db, q, err := reductions.BigHyperedge(in)
		invariant.NoError(err, "experiments: E3 BigHyperedge reduction")
		m := twolevel.QueryMeasures(q)
		var res *core.Result
		d := timeIt(func() {
			res = mustEval(db, q, core.Options{Strategy: core.Generic, EagerMerge: true})
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(m.CCVertex), fmt.Sprint(res.Sat), ms(d),
			fmt.Sprint(res.Stats.MergedStatesTotal),
		})
	}
	t.Notes = append(t.Notes,
		"cc_vertex equals the number of intersected languages; the component product (and hence time) grows exponentially in it — the PSPACE-hardness source (regular-language intersection non-emptiness).")
	return t
}

// E4 — Theorem 3.1(3): FPT. At each fixed query size, the database-size
// growth exponent is (the same) small constant — time f(k)·|D|^c.
func E4(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "E4",
		Title:   "FPT regime: data exponent independent of query size",
		Claim:   "Thm 3.1(3): cc_vertex and tw bounded ⇒ p-eval is FPT (time f(k)·|D|^c)",
		Headers: []string{"k", "fitted |V| exponent"},
	}
	for _, k := range []int{2, 4, 6} {
		q := workload.PairChainQuery(a, k)
		var xs, ys []float64
		for _, n := range []int{8, 12, 18, 27} {
			rng := rand.New(rand.NewSource(seed))
			db := workload.RandomDB(rng, a, n, 3*n)
			d := timeIt(func() { mustEval(db, q, core.Options{Strategy: core.Reduction}) })
			xs = append(xs, float64(n))
			ys = append(ys, float64(d.Microseconds()))
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), fmt.Sprintf("%.2f", slope(xs, ys))})
	}
	t.Notes = append(t.Notes,
		"The data exponent c stays (roughly) constant as k grows — the defining property of fixed-parameter tractability.")
	return t
}

// E5 — Theorem 3.1(2): W[1]. For clique queries the data exponent grows
// with k (the hallmark of W[1]-hardness: no f(k)·|D|^c algorithm expected).
func E5(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "E5",
		Title:   "W[1] regime: data exponent grows with the parameter",
		Claim:   "Thm 3.1(2): bounded cc, unbounded tw ⇒ p-eval is W[1]-complete",
		Headers: []string{"k (clique)", "fitted |V| exponent"},
	}
	for _, k := range []int{2, 3, 4, 5} {
		q := workload.CliqueQuery(a, k)
		var xs, ys []float64
		for _, n := range []int{8, 12, 18, 26} {
			rng := rand.New(rand.NewSource(seed))
			db := buildCliqueDB(rng, a, n, k)
			d := timeIt(func() { mustEval(db, q, core.Options{Strategy: core.Reduction}) })
			xs = append(xs, float64(n))
			ys = append(ys, float64(d.Microseconds()))
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), fmt.Sprintf("%.2f", slope(xs, ys))})
	}
	t.Notes = append(t.Notes,
		"Contrast with E4: here the |V| exponent climbs with k (clique queries have treewidth k−1), separating W[1] from FPT empirically.")
	return t
}

// E6 — Theorem 3.1(1): XNL. Lemma 5.4(a)'s long-chain instances:
// parameterized intersection non-emptiness, time exponential in the number
// of automata even with tiny automata.
func E6(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "E6",
		Title:   "XNL regime: chain-encoded p-IE",
		Claim:   "Thm 3.1(1) via Lemma 5.4(a): unbounded cc_vertex ⇒ p-eval is XNL-complete",
		Headers: []string{"k (DFAs)", "sat", "ECRPQ time (ms)", "direct product time (ms)"},
	}
	for _, k := range []int{2, 4, 6, 8} {
		rng := rand.New(rand.NewSource(seed))
		in := workload.PlantedINE(rng, a, k, 4, true)
		db, q, err := reductions.Chain(in)
		invariant.NoError(err, "experiments: E6 Chain reduction")
		var res *core.Result
		d := timeIt(func() { res = mustEval(db, q, core.Options{Strategy: core.Generic}) })
		var direct time.Duration
		var ok bool
		direct = timeIt(func() { _, ok = in.Solve() })
		invariant.Assert(ok == res.Sat, "experiments: E6 reduction disagrees with direct INE")
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), fmt.Sprint(res.Sat), ms(d), ms(direct)})
	}
	t.Notes = append(t.Notes,
		"Both routes are exponential in k (as XNL-completeness predicts: p-IE is the canonical complete problem); the ECRPQ route tracks the direct automaton product within a polynomial factor.")
	return t
}

// E7 — Lemma 4.1: the merged component relation's NFA is the product of its
// members; states multiply with component size.
func E7() *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "E7",
		Title:   "Lemma 4.1 merge: product-state growth",
		Claim:   "Lemma 4.1: component merge builds the product NFA (states multiply; PSPACE in general, PTIME for fixed cc)",
		Headers: []string{"ℓ (relations in component)", "member states", "merged states", "merged transitions"},
	}
	h := synchro.HammingAtMost(a, 2) // 3 states each
	for _, l := range []int{1, 2, 3, 4, 5} {
		rels := make([]*synchro.Relation, l)
		vars := make([][]int, l)
		for i := 0; i < l; i++ {
			rels[i] = h
			vars[i] = []int{i, i + 1}
		}
		j, err := synchro.Join(a, l+1, rels, vars)
		invariant.NoError(err, "experiments: consistency join setup")
		st, tr := j.Size()
		t.Rows = append(t.Rows, []string{fmt.Sprint(l), "3", fmt.Sprint(st), fmt.Sprint(tr)})
	}
	t.Notes = append(t.Notes,
		"Merged state count is bounded by 3^ℓ (trimming removes unreachable combinations), matching the construction in the proof of Lemma 4.1.")
	return t
}

// E8 — Lemma 4.3: materializing R' costs Θ(|V|^t · product); the measured
// tuple counts and time grow with exponent ~t in |V|.
func E8(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "E8",
		Title:   "Lemma 4.3 reduction cost: |V| exponent tracks cc_vertex",
		Claim:   "Lemma 4.3: D' materialization is O(|D|^{2·cc_vertex}) — polynomial only for bounded components",
		Headers: []string{"t (component tracks)", "fitted |V| exponent of CQ tuples", "fitted |V| exponent of time"},
	}
	for _, tr := range []int{1, 2, 3} {
		q := workload.FanQuery(a, tr)
		var xs, ysTuples, ysTime []float64
		for _, n := range []int{5, 8, 12, 17} {
			rng := rand.New(rand.NewSource(seed))
			db := workload.RandomDB(rng, a, n, 2*n)
			var res *core.Result
			d := timeIt(func() {
				res = mustEval(db, q, core.Options{Strategy: core.Reduction, MaxReductionTracks: 8})
			})
			xs = append(xs, float64(n))
			ysTuples = append(ysTuples, float64(res.Stats.CQTuples)+1)
			ysTime = append(ysTime, float64(d.Microseconds()))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(tr), fmt.Sprintf("%.2f", slope(xs, ysTuples)), fmt.Sprintf("%.2f", slope(xs, ysTime)),
		})
	}
	t.Notes = append(t.Notes,
		"The exponent climbs with the component's track count t = cc_vertex, as the R' sweep ranges over V^t source tuples; for bounded t this is the paper's polynomial upper bound, for unbounded t it is the PSPACE-ness source.")
	return t
}

// E9 — Lemma 5.1 / Claim 5.1: both INE encodings agree with the direct
// product decision on random planted/unplanted instances.
func E9(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "E9",
		Title:   "Lemma 5.1 correctness: INE ↔ ECRPQ round trip",
		Claim:   "Claim 5.1: D ⊨ q iff L1 ∩ ... ∩ Ln ≠ ∅ (both encodings)",
		Headers: []string{"instances", "agreements (case 1)", "agreements (case 2)", "sat instances"},
	}
	rng := rand.New(rand.NewSource(seed))
	total, agree1, agree2, sat := 0, 0, 0, 0
	for i := 0; i < 30; i++ {
		k := 1 + rng.Intn(3)
		in := workload.PlantedINE(rng, a, k, 3, rng.Intn(2) == 0)
		_, want := in.Solve()
		total++
		if want {
			sat++
		}
		db1, q1, err := reductions.BigHyperedge(in)
		invariant.NoError(err, "experiments: BigHyperedge reduction")
		if mustEval(db1, q1, core.Options{Strategy: core.Generic}).Sat == want {
			agree1++
		}
		db2, q2, err := reductions.SharedVariable(in)
		invariant.NoError(err, "experiments: SharedVariable reduction")
		if mustEval(db2, q2, core.Options{Strategy: core.Generic}).Sat == want {
			agree2++
		}
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(total), fmt.Sprintf("%d/%d", agree1, total),
		fmt.Sprintf("%d/%d", agree2, total), fmt.Sprint(sat),
	})
	return t
}

// E10 — Lemma 5.3 / Claim 5.2: CQ evaluation round-trips through the ECRPQ
// encoding, and the binary-counter database blowup is polynomial.
func E10(seed int64) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Lemma 5.3 correctness and cost: CQ ↔ ECRPQ round trip",
		Claim:   "Claim 5.2: D̂ ⊨ q_G iff D ⊨ q; D̂ is polynomial in |D| and independent of q",
		Headers: []string{"|dom D|", "k (clique)", "CQ sat", "ECRPQ sat", "|V(D̂)|", "CQ time (ms)", "ECRPQ time (ms)"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range []int{4, 6} {
		for _, k := range []int{2, 3} {
			st, q := workload.CliqueCQ(rng, k, n, n, true)
			var cqSat bool
			dCQ := timeIt(func() {
				_, s, err := cq.EvalTreeDecomp(st, q)
				invariant.NoError(err, "experiments: E10 tree-decomposition evaluation")
				cqSat = s
			})
			sub, comps, err := reductions.SubdivideCQ(st, q)
			invariant.NoError(err, "experiments: E10 CQ subdivision")
			db, eq, err := reductions.CQToECRPQ(sub, comps)
			invariant.NoError(err, "experiments: E10 CQ-to-ECRPQ reduction")
			var res *core.Result
			dE := timeIt(func() { res = mustEval(db, eq, core.Options{Strategy: core.Generic}) })
			invariant.Assert(res.Sat == cqSat, "experiments: E10 reduction disagrees with CQ evaluation")
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), fmt.Sprint(k), fmt.Sprint(cqSat), fmt.Sprint(res.Sat),
				fmt.Sprint(db.NumVertices()), ms(dCQ), ms(dE),
			})
		}
	}
	return t
}

// E11 — data complexity: for a fixed query, evaluation time grows
// polynomially (low degree) in the database, for every strategy (the paper:
// data complexity is NL-complete for RPQ, CRPQ and ECRPQ alike).
func E11(seed int64) *Table {
	a := alphabet.Lower(2)
	// An unsatisfiable fixed query (requires a b-labelled step on an all-a
	// cycle), so every strategy must do its full data-dependent work rather
	// than stopping at the first witness.
	qb := query.NewBuilder(a)
	qb.Reach("x", "p1", "y").Reach("x", "p2", "y")
	qb.Rel(synchro.EqualLength(a, 2), "p1", "p2")
	qb.Lang("p1", "a*")
	qb.Lang("p2", "a*b")
	q := qb.MustBuild()
	t := &Table{
		ID:      "E11",
		Title:   "Data complexity: fixed query, database sweep",
		Claim:   "§3: data complexity of ECRPQ is NL-complete (polynomial, low degree)",
		Headers: []string{"strategy", "fitted |V| exponent"},
	}
	for _, s := range []core.Options{
		{Strategy: core.Generic},
		{Strategy: core.Generic, EagerMerge: true},
		{Strategy: core.Reduction},
	} {
		var xs, ys []float64
		for _, n := range []int{6, 9, 13, 19} {
			db := graphdb.New(a)
			for i := 0; i < n; i++ {
				db.MustAddVertex("")
			}
			for i := 0; i < n; i++ {
				db.MustAddEdge(i, 0, (i+1)%n)
			}
			d := timeIt(func() { mustEval(db, q, s) })
			xs = append(xs, float64(n))
			ys = append(ys, float64(d.Microseconds()))
		}
		name := s.Strategy.String()
		if s.EagerMerge {
			name += "+eager"
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%.2f", slope(xs, ys))})
	}
	return t
}

// E12 — Corollary 2.4: CRPQ with bounded treewidth evaluates in polynomial
// time via the R_L reduction (RPQ product reachability per atom).
func E12(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "E12",
		Title:   "CRPQ special case (Corollary 2.4)",
		Claim:   "Cor 2.4: tw-bounded CRPQ evaluation is PTIME via the R_L per-atom reachability reduction",
		Headers: []string{"k (atoms)", "|V|", "sat", "time (ms)"},
	}
	for _, k := range []int{2, 4, 8} {
		for _, n := range []int{16, 48} {
			rng := rand.New(rand.NewSource(seed))
			db := workload.RandomDB(rng, a, n, 3*n)
			q := workload.CRPQPathQuery(a, k)
			var res *core.Result
			d := timeIt(func() { res = mustEval(db, q, core.Options{Strategy: core.Reduction}) })
			t.Rows = append(t.Rows, []string{fmt.Sprint(k), fmt.Sprint(n), fmt.Sprint(res.Sat), ms(d)})
		}
	}
	return t
}

// AblationStrategies compares the two strategies (and eager merging) on the
// same instances, on both satisfiable and unsatisfiable variants: the
// generic product search is output-sensitive (a witness can be found
// immediately), while the reduction always pays the full V^2t
// materialization — but on unsatisfiable instances the generic search must
// exhaust all |V|^{#nodevars} assignments and the reduction wins.
func AblationStrategies(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "A1",
		Title:   "Ablation: generic vs reduction strategy, lazy vs eager merge",
		Claim:   "design choice: generic search is output-sensitive; the Lemma 4.3 route is exhaustive but polynomial for bounded components",
		Headers: []string{"instance", "generic (ms)", "generic+eager (ms)", "reduction (ms)"},
	}
	rng := rand.New(rand.NewSource(seed))
	db := workload.RandomDB(rng, a, 10, 30)
	// All-'a' cycle: queries demanding a 'b' label are unsatisfiable.
	unsatDB := graphdb.New(a)
	for i := 0; i < 10; i++ {
		unsatDB.MustAddVertex("")
	}
	for i := 0; i < 10; i++ {
		unsatDB.MustAddEdge(i, 0, (i+1)%10)
	}
	// Unsat variants: same shapes plus a b+ language on every path variable.
	unsatPair := func(k int) *query.Query {
		b := query.NewBuilder(a)
		for i := 1; i <= k; i++ {
			pv := fmt.Sprintf("p%d", i)
			b.Reach(fmt.Sprintf("x%d", i-1), pv, fmt.Sprintf("x%d", i))
			b.Lang(pv, "b+")
		}
		for i := 1; i+1 <= k; i += 2 {
			b.Rel(synchro.EqualLength(a, 2), fmt.Sprintf("p%d", i), fmt.Sprintf("p%d", i+1))
		}
		return b.MustBuild()
	}
	type inst struct {
		name string
		db   *graphdb.DB
		q    *query.Query
	}
	for _, in := range []inst{
		{"pair-chain k=4 (sat)", db, workload.PairChainQuery(a, 4)},
		{"fan k=3 (sat)", db, workload.FanQuery(a, 3)},
		{"eq-chain k=3 (sat)", db, workload.EqChainQuery(a, 3)},
		{"crpq k=4 (sat)", db, workload.CRPQPathQuery(a, 4)},
		{"pair-chain k=4 (unsat)", unsatDB, unsatPair(4)},
		{"pair-chain k=6 (unsat)", unsatDB, unsatPair(6)},
	} {
		d1 := timeIt(func() { mustEval(in.db, in.q, core.Options{Strategy: core.Generic}) })
		d2 := timeIt(func() { mustEval(in.db, in.q, core.Options{Strategy: core.Generic, EagerMerge: true}) })
		d3 := timeIt(func() {
			mustEval(in.db, in.q, core.Options{Strategy: core.Reduction, MaxReductionTracks: 8})
		})
		t.Rows = append(t.Rows, []string{in.name, ms(d1), ms(d2), ms(d3)})
	}
	t.Notes = append(t.Notes,
		"On satisfiable instances the generic search finds a witness almost immediately (often via empty paths); on unsatisfiable ones it exhausts |V|^{#nodevars} assignments while the reduction's Lemma 4.3 sweep stays polynomial — motivating the Auto strategy's component-size dispatch.")
	return t
}

// AblationCQEval compares the naive backtracking CQ evaluator with the
// tree-decomposition dynamic program on clique-query instances.
func AblationCQEval(seed int64) *Table {
	t := &Table{
		ID:      "A2",
		Title:   "Ablation: CQ backtracking vs tree-decomposition DP",
		Claim:   "design choice: Prop 2.3's DP is the PTIME upper-bound engine; backtracking degrades exponentially on adversarial families",
		Headers: []string{"k", "|dom|", "backtrack (ms)", "tree-decomp (ms)", "agree"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, k := range []int{3, 4} {
		for _, n := range []int{12, 20} {
			st, q := workload.CliqueCQ(rng, k, n, 3*n, false)
			var s1, s2 bool
			d1 := timeIt(func() { _, s1, _ = cq.EvalBacktrack(st, q) })
			d2 := timeIt(func() { _, s2, _ = cq.EvalTreeDecomp(st, q) })
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("clique k=%d", k), fmt.Sprint(n), ms(d1), ms(d2), fmt.Sprint(s1 == s2),
			})
			invariant.Assert(s1 == s2, "experiments: CQ evaluators disagree")
		}
	}
	// Adversarial family: chain query one step longer than a binary tree's
	// depth — unsatisfiable, and backtracking explores every root-to-leaf
	// path while the DP's semijoins stay linear.
	for _, depth := range []int{6, 7} {
		st, q := chainOnBinaryTree(depth)
		var s1, s2 bool
		d1 := timeIt(func() { _, s1, _ = cq.EvalBacktrack(st, q) })
		d2 := timeIt(func() { _, s2, _ = cq.EvalTreeDecomp(st, q) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("tree-chain d=%d", depth), fmt.Sprint(st.Domain), ms(d1), ms(d2), fmt.Sprint(s1 == s2),
		})
		invariant.Assert(!s1 && !s2, "experiments: tree-chain instance should be unsatisfiable")
	}
	return t
}

// chainOnBinaryTree builds a complete binary tree structure of the given
// depth and a chain query one atom longer than the depth (unsatisfiable).
func chainOnBinaryTree(depth int) (*cq.Structure, *cq.Query) {
	n := 1<<(depth+1) - 1
	st := cq.NewStructure(n)
	invariant.NoError(st.AddRelation("E", 2), "experiments: tree-chain relation setup")
	for v := 0; 2*v+2 < n; v++ {
		st.MustAddTuple("E", v, 2*v+1)
		st.MustAddTuple("E", v, 2*v+2)
	}
	q := &cq.Query{}
	for i := 1; i <= depth+1; i++ {
		q.Atoms = append(q.Atoms, cq.Atom{Rel: "E", Args: []string{
			fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1)}})
	}
	return st, q
}

// AblationTreewidth compares exact and heuristic treewidth on the query
// families' node graphs.
func AblationTreewidth() *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "A3",
		Title:   "Ablation: exact vs min-fill treewidth",
		Claim:   "design choice: exact subset-DP for ≤20 vertices, min-fill beyond; heuristic is near-exact on these families",
		Headers: []string{"family", "exact tw", "min-fill width"},
	}
	type fam struct {
		name string
		q    *query.Query
	}
	for _, f := range []fam{
		{"pair-chain k=6", workload.PairChainQuery(a, 6)},
		{"clique k=5", workload.CliqueQuery(a, 5)},
		{"fan k=4", workload.FanQuery(a, 4)},
		{"eq-chain k=5", workload.EqChainQuery(a, 5)},
	} {
		g, _, _ := twolevel.Abstraction(f.q.Normalize())
		ng := g.NodeGraph()
		lo, _, _ := ng.Treewidth()
		td := ng.Decompose()
		t.Rows = append(t.Rows, []string{f.name, fmt.Sprint(lo), fmt.Sprint(td.Width())})
	}
	return t
}

// All runs the full suite in order.
func All(seed int64) []*Table {
	return []*Table{
		E1(seed), E1b(seed), E2(seed), E3(seed), E4(seed), E5(seed), E6(seed),
		E7(), E8(seed), E9(seed), E10(seed), E11(seed), E12(seed),
		AblationStrategies(seed), AblationCQEval(seed), AblationTreewidth(), AblationParallel(seed), AblationBaseline(seed),
		StageAttribution(seed), Overload(seed), StreamingEnumeration(seed),
		PlannerAblation(seed),
	}
}

// stageBuckets groups span names into the pipeline stages reported by A8.
// Order is the report's column order.
var stageBuckets = []struct {
	label string
	spans []string
}{
	{"prepare+merge", []string{"core/prepare", "core/decompose", "core/merge"}},
	{"product", []string{"core/product_search"}},
	{"sweep", []string{"core/sweep", "core/reach", "core/materialize"}},
	{"cq join", []string{"core/cq_join"}},
	{"witness", []string{"core/witness"}},
}

// tracedEval evaluates q under a fresh trace and returns the per-stage
// share of wall time (same order as stageBuckets, plus a trailing
// "other" share) and the traced total duration.
func tracedEval(db *graphdb.DB, q *query.Query, opts core.Options) ([]float64, float64) {
	tr := trace.New("experiment")
	ctx := trace.NewContext(context.Background(), tr)
	_, err := core.EvaluateContext(ctx, db, q, opts)
	invariant.NoError(err, "experiments: traced evaluation failed")
	tr.Finish()
	data := tr.Snapshot()

	selfByName := make(map[string]float64)
	for _, st := range data.Breakdown() {
		selfByName[st.Name] = st.SelfUs
	}
	totalUs := data.DurMs * 1000
	shares := make([]float64, 0, len(stageBuckets)+1)
	accounted := 0.0
	for _, b := range stageBuckets {
		var us float64
		for _, name := range b.spans {
			us += selfByName[name]
		}
		accounted += us
		if totalUs > 0 {
			shares = append(shares, 100*us/totalUs)
		} else {
			shares = append(shares, 0)
		}
	}
	other := 0.0
	if totalUs > 0 {
		other = math.Max(0, 100*(totalUs-accounted)/totalUs)
	}
	shares = append(shares, other)
	return shares, data.DurMs
}

// StageAttribution — A8: trace one representative instance from the E1,
// E3 and E8 families and attribute wall time to pipeline stages via span
// self-times. The regime predicts the dominant stage: E1 (tractable
// reduction) spends its time in the Lemma 4.3 sweep and CQ join; E3
// (PSPACE family, one big component) in the component merge + product
// search; E8 (fan queries, t tracks) in the V^t sweep.
func StageAttribution(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "A8",
		Title:   "Per-stage cost attribution (traced evaluation)",
		Claim:   "the complexity driver predicted per regime is where the wall time actually goes",
		Headers: []string{"instance", "strategy", "total (ms)"},
	}
	for _, b := range stageBuckets {
		t.Headers = append(t.Headers, b.label+" %")
	}
	t.Headers = append(t.Headers, "other %")

	type instance struct {
		name  string
		build func() (*graphdb.DB, *query.Query)
		opts  core.Options
	}
	instances := []instance{
		{"E1 pair-chain k=4, |V|=18", func() (*graphdb.DB, *query.Query) {
			rng := rand.New(rand.NewSource(seed))
			return workload.RandomDB(rng, a, 18, 54), workload.PairChainQuery(a, 4)
		}, core.Options{Strategy: core.Reduction}},
		{"E3 INE n=5 (big component)", func() (*graphdb.DB, *query.Query) {
			rng := rand.New(rand.NewSource(seed))
			in := workload.PlantedINE(rng, a, 5, 3, true)
			db, q, err := reductions.BigHyperedge(in)
			invariant.NoError(err, "experiments: A8 BigHyperedge reduction")
			return db, q
		}, core.Options{Strategy: core.Generic, EagerMerge: true}},
		{"E8 fan t=3, |V|=12", func() (*graphdb.DB, *query.Query) {
			rng := rand.New(rand.NewSource(seed))
			return workload.RandomDB(rng, a, 12, 24), workload.FanQuery(a, 3)
		}, core.Options{Strategy: core.Reduction, MaxReductionTracks: 8}},
	}
	for _, in := range instances {
		db, q := in.build()
		shares, totalMs := tracedEval(db, q, in.opts)
		row := []string{in.name, in.opts.Strategy.String(), fmt.Sprintf("%.3f", totalMs)}
		for _, s := range shares {
			row = append(row, fmt.Sprintf("%.1f", s))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"Shares are span self-times (duration minus child spans) from internal/trace, so columns sum to ≤100%; \"other\" is untraced glue. The dominant column per row matches the regime's predicted cost driver: E3's time concentrates in prepare+merge + product (the exponential language product), E1/E8 in sweep + cq join (the Lemma 4.3 pipeline).")
	return t
}

// AblationParallel measures the Lemma 4.3 sweep's speedup from sharding
// across goroutines (Options.Parallelism).
func AblationParallel(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "A4",
		Title:   "Ablation: parallel R' sweep",
		Claim:   "design choice: the V^t source sweep is embarrassingly parallel; workers share nothing but the database",
		Headers: []string{"workers", "time (ms)", "speedup"},
	}
	rng := rand.New(rand.NewSource(seed))
	db := workload.RandomDB(rng, a, 26, 78)
	q := workload.PairChainQuery(a, 4)
	var base time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		opts := core.Options{Strategy: core.Reduction, Parallelism: w}
		d := timeIt(func() { mustEval(db, q, opts) })
		if w == 1 {
			base = d
		}
		speedup := float64(base) / float64(d)
		t.Rows = append(t.Rows, []string{fmt.Sprint(w), ms(d), fmt.Sprintf("%.2fx", speedup)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Host has GOMAXPROCS = %d; speedup is bounded by available CPUs (a single-CPU host shows none). Correctness is property-tested against the sequential sweep.",
		runtime.GOMAXPROCS(0)))
	return t
}

// AblationBaseline compares the engine against the brute-force baseline
// (bounded path enumeration): the baseline's time explodes with database
// size and path bound while the engine stays polynomial in the tractable
// regime.
func AblationBaseline(seed int64) *Table {
	a := alphabet.Lower(2)
	t := &Table{
		ID:      "A5",
		Title:   "Ablation: engine vs brute-force baseline",
		Claim:   "baseline: path enumeration is exponential in the bound; the paper's product algorithms avoid enumerating paths entirely",
		Headers: []string{"|V|", "bound", "baseline (ms)", "generic (ms)", "agree"},
	}
	// Unsatisfiable instance (requires a b-step on an all-a graph): both
	// evaluators must do their full work, exposing the baseline's blowup.
	qb := query.NewBuilder(a)
	qb.Reach("x", "p1", "y").Reach("x", "p2", "y")
	qb.Rel(synchro.EqualLength(a, 2), "p1", "p2")
	qb.Lang("p1", "a*")
	qb.Lang("p2", "a*b")
	q := qb.MustBuild()
	for _, n := range []int{4, 6, 8} {
		db := graphdb.New(a)
		for i := 0; i < n; i++ {
			db.MustAddVertex("")
		}
		for i := 0; i < n; i++ {
			db.MustAddEdge(i, 0, (i+1)%n)
			db.MustAddEdge(i, 0, (i+2)%n)
		}
		bound := n
		var naive, engine *core.Result
		var err error
		dN := timeIt(func() { naive, err = core.NaiveBounded(db, q, bound) })
		invariant.NoError(err, "experiments: naive baseline evaluation")
		dE := timeIt(func() { engine = mustEval(db, q, core.Options{Strategy: core.Generic}) })
		agree := naive.Sat == engine.Sat
		invariant.Assert(!naive.Sat || engine.Sat, "experiments: baseline found a witness the engine missed")
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(bound), ms(dN), ms(dE), fmt.Sprint(agree),
		})
	}
	t.Notes = append(t.Notes,
		"The baseline is complete only relative to its path bound; the engine's product search is exact. Agreement holds whenever witnesses fit the bound.")
	return t
}
