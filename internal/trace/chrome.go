package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteChrome writes the snapshots in the Chrome trace_event JSON array
// format, loadable by chrome://tracing and Perfetto. Each trace becomes
// one process (pid = trace id); spans become "X" complete events. Chrome
// nests events on a thread only when their intervals nest, so spans are
// laid out onto the fewest lanes (tids) on which every pair either nests
// or is disjoint — concurrent sibling spans (parallel sweep shards, pool
// interleavings) land on separate lanes instead of rendering garbled.
func WriteChrome(w io.Writer, traces ...TraceData) error {
	events := make([]chromeEvent, 0, 64)
	for i, td := range traces {
		pid := td.ID
		if pid == 0 {
			pid = uint64(i + 1)
		}
		events = append(events, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": fmt.Sprintf("%s #%d (%.2fms)", td.Name, pid, td.DurMs)},
		})
		lanes := assignLanes(td.Spans)
		for si, sp := range td.Spans {
			args := map[string]any{}
			for k, v := range td.Attrs {
				args["trace."+k] = v
			}
			for k, v := range sp.Attrs {
				args[k] = v
			}
			events = append(events, chromeEvent{
				Name:  sp.Name,
				Phase: "X",
				PID:   pid,
				TID:   lanes[si],
				TsUs:  sp.StartUs,
				DurUs: sp.DurUs,
				Args:  args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   uint64         `json:"pid"`
	TID   int            `json:"tid"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// assignLanes maps each span index to a lane (tid) such that every two
// spans on a lane either nest or are disjoint. Greedy: visit spans by
// start time (ties: longer first, so parents precede the children they
// contain); keep a stack of open intervals per lane; a span fits the
// first lane whose stack, after popping finished intervals, is empty or
// has a top that contains it.
func assignLanes(spans []SpanData) map[int]int {
	type iv struct {
		idx        int
		start, end float64
	}
	ivs := make([]iv, len(spans))
	for i, sp := range spans {
		ivs[i] = iv{idx: i, start: sp.StartUs, end: sp.StartUs + sp.DurUs}
	}
	sort.SliceStable(ivs, func(a, b int) bool {
		if ivs[a].start != ivs[b].start {
			return ivs[a].start < ivs[b].start
		}
		return ivs[a].end > ivs[b].end
	})
	lanes := map[int]int{}
	var stacks [][]iv
	for _, v := range ivs {
		placed := false
		for li := range stacks {
			st := stacks[li]
			for len(st) > 0 && st[len(st)-1].end <= v.start {
				st = st[:len(st)-1]
			}
			if len(st) == 0 || (st[len(st)-1].start <= v.start && v.end <= st[len(st)-1].end) {
				stacks[li] = append(st, v)
				lanes[v.idx] = li
				placed = true
				break
			}
			stacks[li] = st
		}
		if !placed {
			stacks = append(stacks, []iv{v})
			lanes[v.idx] = len(stacks) - 1
		}
	}
	return lanes
}
