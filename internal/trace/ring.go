package trace

import (
	"sync"
	"sync/atomic"
)

// Ring is a fixed-capacity circular buffer of trace snapshots. Writers
// overwrite the oldest entry; Recent returns newest-first copies. Sizing:
// each TraceData for a typical query holds 10–20 spans (~2 KiB), so the
// default 64-entry ring costs on the order of 128 KiB — see DESIGN.md.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceData
	next int // index of the slot the next Add writes
	n    int // number of live entries, ≤ len(buf)
}

// NewRing returns a ring holding up to size snapshots (minimum 1).
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{buf: make([]TraceData, size)}
}

// Add stores a snapshot, evicting the oldest when full. Nil-safe.
func (r *Ring) Add(td TraceData) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = td
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Recent returns up to max snapshots, newest first (max ≤ 0 means all).
// Nil-safe (returns nil).
func (r *Ring) Recent(max int) []TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if max > 0 && max < n {
		n = max
	}
	out := make([]TraceData, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.buf)*2) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// Tracer decides which requests get a trace and keeps their snapshots.
//
// Sampling rule: with SampleEvery = N, every Nth request is traced
// (counter-based, so a steady load sees a uniform 1/N). N ≤ 1 traces
// every request. A Tracer created with slow-query logging in mind should
// use N = 1: the slow-query log can only report a breakdown for requests
// that carry a trace, so the server forces sample-all whenever a
// -slow-query threshold is set (documented in DESIGN.md).
type Tracer struct {
	every  int64
	count  atomic.Int64
	nextID atomic.Uint64
	ring   *Ring
}

// NewTracer samples one request in sampleEvery (≤ 1 = all) and retains
// ringSize snapshots.
func NewTracer(sampleEvery, ringSize int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if ringSize < 1 {
		ringSize = 64
	}
	return &Tracer{every: int64(sampleEvery), ring: NewRing(ringSize)}
}

// Sample returns a new trace when this request is selected, nil otherwise.
// A nil Tracer never samples. The returned trace has a unique id.
func (t *Tracer) Sample(name string) *Trace {
	if t == nil {
		return nil
	}
	if t.every > 1 && t.count.Add(1)%t.every != 0 {
		return nil
	}
	tr := New(name)
	tr.id = t.nextID.Add(1)
	return tr
}

// Collect finishes the trace, snapshots it into the ring, and returns the
// snapshot. Nil-safe on both receiver and argument.
func (t *Tracer) Collect(tr *Trace) TraceData {
	if tr == nil {
		return TraceData{}
	}
	tr.Finish()
	td := tr.Snapshot()
	if t != nil {
		t.ring.Add(td)
	}
	return td
}

// Recent returns up to max retained snapshots, newest first. Nil-safe.
func (t *Tracer) Recent(max int) []TraceData {
	if t == nil {
		return nil
	}
	return t.ring.Recent(max)
}

