package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteChromeShape(t *testing.T) {
	td := TraceData{
		ID:    7,
		Name:  "query",
		DurMs: 1.5,
		Attrs: map[string]any{"db": "g1"},
		Spans: []SpanData{
			{ID: 0, Parent: -1, Name: "core/prepare", StartUs: 0, DurUs: 100,
				Attrs: map[string]any{"strategy": "reduction"}},
			{ID: 1, Parent: 0, Name: "core/merge", StartUs: 10, DurUs: 50},
		},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, td); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 3 { // metadata + 2 spans
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[0]["ph"] != "M" || events[0]["name"] != "process_name" {
		t.Errorf("first event must be process_name metadata, got %v", events[0])
	}
	var prepare map[string]any
	for _, ev := range events {
		if ev["name"] == "core/prepare" {
			prepare = ev
		}
	}
	if prepare == nil {
		t.Fatal("no core/prepare event")
	}
	if prepare["ph"] != "X" {
		t.Errorf("span phase = %v, want X", prepare["ph"])
	}
	if prepare["pid"] != float64(7) {
		t.Errorf("pid = %v, want 7", prepare["pid"])
	}
	args := prepare["args"].(map[string]any)
	if args["strategy"] != "reduction" {
		t.Errorf("span args = %v", args)
	}
	if args["trace.db"] != "g1" {
		t.Errorf("trace attrs not propagated to args: %v", args)
	}
}

func TestAssignLanes(t *testing.T) {
	// parent [0,100] containing child [10,50] → same lane;
	// concurrent sibling [20,120] overlaps both without nesting → new lane;
	// later span [200,250] reuses lane 0.
	spans := []SpanData{
		{ID: 0, StartUs: 0, DurUs: 100},
		{ID: 1, StartUs: 10, DurUs: 40},
		{ID: 2, StartUs: 20, DurUs: 100},
		{ID: 3, StartUs: 200, DurUs: 50},
	}
	lanes := assignLanes(spans)
	if lanes[0] != 0 || lanes[1] != 0 {
		t.Errorf("nested spans split lanes: %v", lanes)
	}
	if lanes[2] == lanes[0] {
		t.Errorf("overlapping non-nested span shares lane: %v", lanes)
	}
	if lanes[3] != 0 {
		t.Errorf("disjoint later span should reuse lane 0: %v", lanes)
	}
}

func TestAssignLanesTiesLongerFirst(t *testing.T) {
	// Two spans starting at the same instant where one contains the other:
	// the longer must claim the lane first so the shorter nests inside it.
	spans := []SpanData{
		{ID: 0, StartUs: 0, DurUs: 10},
		{ID: 1, StartUs: 0, DurUs: 100},
	}
	lanes := assignLanes(spans)
	if lanes[0] != lanes[1] {
		t.Errorf("contained same-start spans should share a lane: %v", lanes)
	}
}
