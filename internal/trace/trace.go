// Package trace is a zero-dependency span subsystem for attributing ECRPQ
// evaluation cost to pipeline stages: Lemma 4.1 component merge, Lemma 4.2
// product search, Lemma 4.3 sweep + CQ join, plus the server-side stages
// around them (parse, queue wait, plan cache, persistence).
//
// The design goal is that tracing costs ~zero when disabled. Every method
// on *Trace and *Span is nil-safe, and StartSpan on a context that carries
// no trace performs a single context.Value lookup and returns a nil span —
// no allocation, no atomic, no lock (BenchmarkTraceDisabled pins this at
// 0 allocs/op). Code therefore instruments unconditionally:
//
//	ctx, sp := trace.StartSpan(ctx, "core/sweep")
//	defer sp.End()
//	sp.SetInt("sources", int64(n))
//
// Attributes are typed (SetInt / SetStr) rather than interface-valued so
// the enabled path stays allocation-light too.
//
// Span names form a small fixed taxonomy (see DESIGN.md "Observability"):
//
//	server/parse        query text → AST
//	pool/queue_wait     admission queue dwell time
//	plancache/get|put   plan cache lookups and inserts
//	core/prepare        Prepare: decompose + strategy + merge + measures
//	core/decompose      component decomposition
//	core/merge          Lemma 4.1 synchronized merge
//	core/materialize    Lemma 4.3 R' build (parent of sweep/reach)
//	core/reach          reachable-set pass for free track variables
//	core/sweep          per-component V^t source sweep
//	core/product_search Lemma 4.2 product search (generic strategy)
//	core/cq_join        tree-decomposition CQ join
//	core/witness        witness path recovery
//	persist/snapshot_write, persist/journal_append
package trace

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Attr is a typed key/value attribute. Exactly one of Str/Int is
// meaningful, per IsStr. Typed fields (rather than `any`) keep SetInt free
// of interface-boxing allocations.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// Span is one timed stage within a Trace. All methods are nil-safe: a nil
// *Span (the disabled path) ignores every call.
type Span struct {
	tr     *Trace
	id     int
	parent int // span id of parent, -1 for a root span
	name   string
	begin  time.Time
	end    time.Time // zero until End
	attrs  []Attr
}

// Trace collects the spans of one request or one CLI evaluation. A Trace
// is safe for concurrent use: pool workers may start and end spans while
// another goroutine snapshots it.
type Trace struct {
	id    uint64
	name  string
	begin time.Time

	mu    sync.Mutex
	end   time.Time // zero until Finish
	spans []*Span
	attrs []Attr
}

// New starts a trace whose clock begins now. The id is 0; the Tracer
// assigns unique ids to sampled request traces.
func New(name string) *Trace {
	return &Trace{name: name, begin: time.Now()}
}

// ctxKey carries a *traceRef in a context. The ref bundles the trace with
// the current parent span id so child spans nest without a second Value.
type ctxKey struct{}

type traceRef struct {
	tr     *Trace
	parent int // id of the span that owns this context, -1 at the root
}

// NewContext returns ctx carrying tr; spans started via StartSpan on the
// result attach to tr. A nil tr returns ctx unchanged, so callers can
// thread an optional trace without branching.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &traceRef{tr: tr, parent: -1})
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if ref, ok := ctx.Value(ctxKey{}).(*traceRef); ok {
		return ref.tr
	}
	return nil
}

// StartSpan begins a span as a child of the span that owns ctx. When ctx
// carries no trace it returns (ctx, nil) without allocating — that is the
// production fast path. The returned context makes the new span the parent
// of any spans started from it.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	ref, ok := ctx.Value(ctxKey{}).(*traceRef)
	if !ok {
		return ctx, nil
	}
	sp := ref.tr.startChild(name, ref.parent, time.Now())
	return context.WithValue(ctx, ctxKey{}, &traceRef{tr: ref.tr, parent: sp.id}), sp
}

// Start begins a root-level span directly on the trace. Nil-safe.
func (t *Trace) Start(name string) *Span {
	return t.StartAt(name, time.Now())
}

// StartAt begins a root-level span whose clock started at a past instant
// — used for queue-wait spans, where the interval began when the job was
// submitted but the code that records it runs when the job is dequeued.
// Nil-safe.
func (t *Trace) StartAt(name string, at time.Time) *Span {
	if t == nil {
		return nil
	}
	return t.startChild(name, -1, at)
}

func (t *Trace) startChild(name string, parent int, at time.Time) *Span {
	t.mu.Lock()
	sp := &Span{tr: t, id: len(t.spans), parent: parent, name: name, begin: at}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// End closes the span. Calling End twice keeps the first end time.
// Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.tr.mu.Unlock()
}

// SetInt attaches an integer attribute. Nil-safe.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
	s.tr.mu.Unlock()
}

// SetStr attaches a string attribute. Nil-safe.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, IsStr: true})
	s.tr.mu.Unlock()
}

// SetInt attaches a trace-level integer attribute (plan snapshot fields:
// cc_vertex, treewidth, …). Nil-safe.
func (t *Trace) SetInt(key string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, Attr{Key: key, Int: v})
	t.mu.Unlock()
}

// SetStr attaches a trace-level string attribute (db, strategy, cache
// state, …). Nil-safe.
func (t *Trace) SetStr(key, v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, Attr{Key: key, Str: v, IsStr: true})
	t.mu.Unlock()
}

// Finish closes the trace clock. Spans still open keep running until
// their own End; Snapshot clamps them to the snapshot instant. Nil-safe.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = now
	}
	t.mu.Unlock()
}

// Duration is the trace wall time: Finish−begin, or time-so-far if the
// trace is still open. Nil-safe (returns 0).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.end.IsZero() {
		return time.Since(t.begin)
	}
	return t.end.Sub(t.begin)
}

// SpanData is the exported snapshot of one span. Times are microseconds
// relative to the trace begin, which is what the Chrome trace_event format
// wants and keeps JSON small.
type SpanData struct {
	ID      int            `json:"id"`
	Parent  int            `json:"parent"` // -1 for root spans
	Name    string         `json:"name"`
	StartUs float64        `json:"start_us"`
	DurUs   float64        `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// TraceData is an immutable snapshot of a finished (or in-flight) trace,
// safe to hold in the ring buffer and serialize.
type TraceData struct {
	ID    uint64         `json:"id"`
	Name  string         `json:"name"`
	Begin time.Time      `json:"begin"`
	DurMs float64        `json:"dur_ms"`
	Attrs map[string]any `json:"attrs,omitempty"`
	Spans []SpanData     `json:"spans"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		if a.IsStr {
			m[a.Key] = a.Str
		} else {
			m[a.Key] = a.Int
		}
	}
	return m
}

// Snapshot copies the trace into plain exported structs. Open spans and an
// open trace are clamped to the snapshot instant so a mid-flight snapshot
// is still well-formed. Nil-safe (returns the zero TraceData).
func (t *Trace) Snapshot() TraceData {
	if t == nil {
		return TraceData{}
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = now
	}
	td := TraceData{
		ID:    t.id,
		Name:  t.name,
		Begin: t.begin,
		DurMs: float64(end.Sub(t.begin)) / float64(time.Millisecond),
		Attrs: attrMap(t.attrs),
		Spans: make([]SpanData, 0, len(t.spans)),
	}
	for _, sp := range t.spans {
		se := sp.end
		if se.IsZero() {
			se = now
		}
		td.Spans = append(td.Spans, SpanData{
			ID:      sp.id,
			Parent:  sp.parent,
			Name:    sp.name,
			StartUs: float64(sp.begin.Sub(t.begin)) / float64(time.Microsecond),
			DurUs:   float64(se.Sub(sp.begin)) / float64(time.Microsecond),
			Attrs:   attrMap(sp.attrs),
		})
	}
	return td
}

// Stage is one row of a per-stage breakdown: the self time (span duration
// minus direct children) summed over all spans with the same name.
type Stage struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	SelfUs  float64 `json:"self_us"`
	TotalUs float64 `json:"total_us"`
}

// Breakdown aggregates spans by name into self-time stages, sorted by
// self time descending. Self time (duration minus direct children) makes
// the stage percentages of a nested trace sum to ≤ 100%, which is what
// "stage X dominates" should mean.
func (td TraceData) Breakdown() []Stage {
	childSum := make(map[int]float64) // parent span id → Σ children DurUs
	for _, sp := range td.Spans {
		if sp.Parent >= 0 {
			childSum[sp.Parent] += sp.DurUs
		}
	}
	byName := make(map[string]*Stage)
	order := []string{}
	for _, sp := range td.Spans {
		st := byName[sp.Name]
		if st == nil {
			st = &Stage{Name: sp.Name}
			byName[sp.Name] = st
			order = append(order, sp.Name)
		}
		st.Count++
		st.TotalUs += sp.DurUs
		self := sp.DurUs - childSum[sp.ID]
		if self < 0 {
			self = 0
		}
		st.SelfUs += self
	}
	out := make([]Stage, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfUs != out[j].SelfUs {
			return out[i].SelfUs > out[j].SelfUs
		}
		return out[i].Name < out[j].Name
	})
	return out
}
