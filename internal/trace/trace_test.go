package trace

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestStartSpanNesting(t *testing.T) {
	tr := New("req")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost the trace")
	}
	ctx1, a := StartSpan(ctx, "core/prepare")
	_, b := StartSpan(ctx1, "core/merge")
	b.SetInt("merged_states", 42)
	b.End()
	a.End()
	_, c := StartSpan(ctx, "core/cq_join")
	c.SetStr("kind", "treedecomp")
	c.End()
	tr.SetStr("db", "g1")
	tr.Finish()

	td := tr.Snapshot()
	if len(td.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(td.Spans))
	}
	if td.Spans[0].Parent != -1 || td.Spans[2].Parent != -1 {
		t.Errorf("root spans have parents %d, %d; want -1", td.Spans[0].Parent, td.Spans[2].Parent)
	}
	if td.Spans[1].Parent != td.Spans[0].ID {
		t.Errorf("merge parent = %d, want %d", td.Spans[1].Parent, td.Spans[0].ID)
	}
	if got := td.Spans[1].Attrs["merged_states"]; got != int64(42) {
		t.Errorf("merged_states = %v (%T), want 42", got, got)
	}
	if got := td.Attrs["db"]; got != "g1" {
		t.Errorf("trace attr db = %v", got)
	}
}

func TestDisabledPathIsInert(t *testing.T) {
	ctx := context.Background()
	if tr := FromContext(ctx); tr != nil {
		t.Fatal("unexpected trace in background context")
	}
	ctx2, sp := StartSpan(ctx, "noop")
	if sp != nil {
		t.Fatal("got a span without a trace")
	}
	if ctx2 != ctx {
		t.Fatal("disabled StartSpan must return ctx unchanged")
	}
	// All of these must be no-ops, not panics.
	sp.End()
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	var tr *Trace
	tr.Finish()
	tr.SetInt("k", 1)
	tr.SetStr("k", "v")
	tr.Start("x").End()
	if d := tr.Duration(); d != 0 {
		t.Errorf("nil trace duration = %v", d)
	}
	if td := tr.Snapshot(); len(td.Spans) != 0 {
		t.Errorf("nil trace snapshot has spans")
	}
	if NewContext(ctx, nil) != ctx {
		t.Error("NewContext(nil) must return ctx unchanged")
	}
}

// TestTraceDisabledZeroAlloc pins the acceptance requirement directly:
// the disabled path performs zero heap allocations.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := StartSpan(ctx, "core/product_search")
		sp.SetInt("product_checks", 123)
		sp.SetStr("strategy", "generic")
		sp.End()
		_ = ctx2
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkTraceDisabled is the CI gate: `make trace-gate` fails the build
// if this reports nonzero allocs/op.
func BenchmarkTraceDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx2, sp := StartSpan(ctx, "core/product_search")
		sp.SetInt("product_checks", int64(i))
		sp.End()
		_ = ctx2
	}
}

func BenchmarkTraceEnabled(b *testing.B) {
	tr := New("bench")
	ctx := NewContext(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "core/sweep")
		sp.SetInt("sources", int64(i))
		sp.End()
	}
}

// TestConcurrentSpans interleaves spans from many goroutines — the shape
// of pool workers tracing into one request trace — under -race, with
// snapshots taken mid-flight.
func TestConcurrentSpans(t *testing.T) {
	tr := New("concurrent")
	ctx := NewContext(context.Background(), tr)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshot reader, as /debug/trace/recent would do.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				td := tr.Snapshot()
				for _, sp := range td.Spans {
					if sp.DurUs < 0 {
						t.Errorf("negative span duration %v", sp.DurUs)
						return
					}
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx1, sp := StartSpan(ctx, "core/sweep")
				sp.SetInt("worker", int64(w))
				_, inner := StartSpan(ctx1, "core/product_search")
				inner.End()
				sp.End()
			}
		}(w)
	}
	// Wait for the span writers (all Add'd above), then stop the reader.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish on their own; the reader needs the stop signal. Close
	// stop once only writers remain: poll the span count.
	for {
		td := tr.Snapshot()
		if len(td.Spans) >= workers*perWorker*2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	tr.Finish()
	td := tr.Snapshot()
	if got := len(td.Spans); got != workers*perWorker*2 {
		t.Fatalf("spans = %d, want %d", got, workers*perWorker*2)
	}
	// Every inner span must be parented by a sweep span from this trace.
	names := map[int]string{}
	for _, sp := range td.Spans {
		names[sp.ID] = sp.Name
	}
	for _, sp := range td.Spans {
		if sp.Name == "core/product_search" && names[sp.Parent] != "core/sweep" {
			t.Fatalf("inner span parented by %q", names[sp.Parent])
		}
	}
}

func TestBreakdownSelfTime(t *testing.T) {
	td := TraceData{
		Spans: []SpanData{
			{ID: 0, Parent: -1, Name: "core/prepare", StartUs: 0, DurUs: 100},
			{ID: 1, Parent: 0, Name: "core/merge", StartUs: 10, DurUs: 80},
			{ID: 2, Parent: -1, Name: "core/sweep", StartUs: 100, DurUs: 300},
			{ID: 3, Parent: -1, Name: "core/sweep", StartUs: 400, DurUs: 100},
		},
	}
	stages := td.Breakdown()
	bySelf := map[string]float64{}
	byCount := map[string]int{}
	for _, st := range stages {
		bySelf[st.Name] = st.SelfUs
		byCount[st.Name] = st.Count
	}
	if bySelf["core/prepare"] != 20 { // 100 − child 80
		t.Errorf("prepare self = %v, want 20", bySelf["core/prepare"])
	}
	if bySelf["core/merge"] != 80 {
		t.Errorf("merge self = %v, want 80", bySelf["core/merge"])
	}
	if bySelf["core/sweep"] != 400 || byCount["core/sweep"] != 2 {
		t.Errorf("sweep self = %v count = %d, want 400/2", bySelf["core/sweep"], byCount["core/sweep"])
	}
	// Sorted by self time descending: sweep first.
	if stages[0].Name != "core/sweep" {
		t.Errorf("dominant stage = %q, want core/sweep", stages[0].Name)
	}
}

func TestRingEvictionOrder(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(TraceData{ID: uint64(i)})
	}
	got := r.Recent(0)
	if len(got) != 3 {
		t.Fatalf("recent = %d entries, want 3", len(got))
	}
	for i, want := range []uint64{5, 4, 3} {
		if got[i].ID != want {
			t.Errorf("recent[%d].ID = %d, want %d", i, got[i].ID, want)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[0].ID != 5 {
		t.Errorf("recent(2) = %+v", got)
	}
	var nilRing *Ring
	nilRing.Add(TraceData{})
	if nilRing.Recent(0) != nil {
		t.Error("nil ring must return nil")
	}
}

func TestTracerSampling(t *testing.T) {
	tc := NewTracer(3, 8)
	sampled := 0
	for i := 0; i < 30; i++ {
		if tr := tc.Sample("q"); tr != nil {
			sampled++
			tc.Collect(tr)
		}
	}
	if sampled != 10 {
		t.Errorf("sampled %d of 30 with 1-in-3, want 10", sampled)
	}
	if got := len(tc.Recent(0)); got != 8 {
		t.Errorf("ring holds %d, want 8 (ring size)", got)
	}
	// IDs must be unique and increasing in collection order.
	rec := tc.Recent(0)
	for i := 1; i < len(rec); i++ {
		if rec[i-1].ID <= rec[i].ID {
			t.Errorf("ids not newest-first: %d then %d", rec[i-1].ID, rec[i].ID)
		}
	}
	// Sample-all tracer.
	all := NewTracer(1, 4)
	for i := 0; i < 5; i++ {
		if all.Sample("q") == nil {
			t.Fatal("sample-every-1 returned nil")
		}
	}
	// Nil tracer never samples, Collect is still safe.
	var nilT *Tracer
	if nilT.Sample("q") != nil {
		t.Error("nil tracer sampled")
	}
	nilT.Collect(nil)
	nilT.Collect(New("x"))
	if nilT.Recent(1) != nil {
		t.Error("nil tracer has recents")
	}
}

func TestStartAtBackdatesSpan(t *testing.T) {
	tr := New("req")
	submitted := time.Now()
	time.Sleep(5 * time.Millisecond)
	sp := tr.StartAt("pool/queue_wait", submitted)
	sp.End()
	tr.Finish()
	td := tr.Snapshot()
	if len(td.Spans) != 1 {
		t.Fatalf("spans = %d", len(td.Spans))
	}
	if td.Spans[0].DurUs < 4000 {
		t.Errorf("backdated span dur = %vus, want ≥ ~5000", td.Spans[0].DurUs)
	}
}

func TestDoubleEndKeepsFirst(t *testing.T) {
	tr := New("req")
	sp := tr.Start("s")
	sp.End()
	first := tr.Snapshot().Spans[0].DurUs
	time.Sleep(2 * time.Millisecond)
	sp.End()
	second := tr.Snapshot().Spans[0].DurUs
	if first != second {
		t.Errorf("second End changed duration: %v → %v", first, second)
	}
}
