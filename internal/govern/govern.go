// Package govern is the resource governor for ECRPQ evaluation: a global
// byte ledger (Broker) that per-query Reservations draw from, plus the
// admission-side policies that keep a server for a PSPACE-hard problem
// standing under load (per-client token-bucket quotas and adaptive
// overload shedding).
//
// The accounting model is a two-level ledger:
//
//   - The Broker holds the process-wide budget. Its invariant is
//     reserved <= budget at all times (budget 0 means "account but never
//     deny", so peak tracking works even without enforcement).
//   - A Reservation is one query's claim against the broker. It acquires
//     broker bytes in coarse chunks (reserveChunk) so the per-allocation
//     cost in evaluation hot loops is one atomic add, not a broker
//     round-trip. Release returns the whole grant and is idempotent, so
//     "release on all paths" is cheap to guarantee with a single defer.
//   - A Meter is a single-goroutine charging scope over a Reservation:
//     everything charged through the meter is shrunk back when the meter
//     closes. Scratch structures that are reused across calls charge only
//     high-water growth; per-call structures charge through a meter that
//     closes on return.
//
// Everything is nil-safe: a nil *Broker grants everything, a nil
// *Reservation and nil *Meter no-op, and the disabled path allocates
// nothing (enforced by BenchmarkReservationDisabled, gated in make ci).
// Evaluation code receives the reservation through the context
// (NewContext/FromContext) so core function signatures keep their
// maxStates plumbing unchanged.
package govern

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"ecrpq/internal/faultinject"
)

// ErrResourceExhausted is the sentinel wrapped by every denial: the broker
// budget is spent, a reservation could not grow, or a fault was injected
// at the govern.reserve site. Servers map it to 429 RESOURCE_EXHAUSTED.
var ErrResourceExhausted = errors.New("govern: resource budget exhausted")

// reserveChunk is the granularity at which reservations pull bytes from
// the broker. Coarse chunks amortize broker atomics: a hot loop charging
// 56-byte rows touches the broker once per ~4700 rows.
const reserveChunk = 256 << 10

// Broker is the process-wide byte ledger. The zero value is unusable; use
// NewBroker. A nil *Broker grants every request (fully disabled path).
type Broker struct {
	budget   int64 // immutable after NewBroker; 0 = unlimited (account only)
	reserved atomic.Int64
	peak     atomic.Int64
	denials  atomic.Uint64
}

// BrokerStats is a point-in-time snapshot of the ledger.
type BrokerStats struct {
	BudgetBytes   int64  `json:"budget_bytes"`
	ReservedBytes int64  `json:"reserved_bytes"`
	PeakBytes     int64  `json:"peak_bytes"`
	Denials       uint64 `json:"denials"`
}

// NewBroker builds a ledger with the given byte budget. budget <= 0 means
// unlimited: acquisitions always succeed but are still accounted, so
// reserved/peak stats stay meaningful for capacity planning.
func NewBroker(budget int64) *Broker {
	if budget < 0 {
		budget = 0
	}
	return &Broker{budget: budget}
}

// TryAcquire claims n bytes from the budget, reporting whether the claim
// fit. It never blocks. A nil broker always grants. TryAcquire/Release
// also satisfy the plancache Ledger interface, so cached materializations
// and live query reservations share this one ledger.
func (b *Broker) TryAcquire(n int64) bool {
	if b == nil || n <= 0 {
		return true
	}
	for {
		cur := b.reserved.Load()
		next := cur + n
		if b.budget > 0 && next > b.budget {
			b.denials.Add(1)
			return false
		}
		if b.reserved.CompareAndSwap(cur, next) {
			updatePeak(&b.peak, next)
			return true
		}
	}
}

// Release returns n bytes to the budget. Releasing more than was acquired
// is a caller bug; the ledger clamps at zero rather than going negative so
// a miscount cannot turn into an unbounded grant.
func (b *Broker) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	if cur := b.reserved.Add(-n); cur < 0 {
		// Clamp: a double-release must not create phantom budget.
		b.reserved.CompareAndSwap(cur, 0)
	}
}

// Budget returns the configured budget (0 = unlimited).
func (b *Broker) Budget() int64 {
	if b == nil {
		return 0
	}
	return b.budget
}

// Reserved returns the bytes currently claimed.
func (b *Broker) Reserved() int64 {
	if b == nil {
		return 0
	}
	return b.reserved.Load()
}

// Stats snapshots the ledger counters.
func (b *Broker) Stats() BrokerStats {
	if b == nil {
		return BrokerStats{}
	}
	return BrokerStats{
		BudgetBytes:   b.budget,
		ReservedBytes: b.reserved.Load(),
		PeakBytes:     b.peak.Load(),
		Denials:       b.denials.Load(),
	}
}

// Reserve opens a reservation with an initial claim of n bytes (the
// admission floor). It fails fast with ErrResourceExhausted when the claim
// does not fit, so an overloaded server rejects before any evaluation work
// starts. A nil broker returns a nil reservation, which is the valid,
// zero-cost disabled handle.
func (b *Broker) Reserve(n int64) (*Reservation, error) {
	if b == nil {
		return nil, nil
	}
	if n < 0 {
		n = 0
	}
	if !b.TryAcquire(n) {
		return nil, fmt.Errorf("%w: %d bytes requested with %d of %d reserved",
			ErrResourceExhausted, n, b.reserved.Load(), b.budget)
	}
	r := &Reservation{b: b}
	r.granted.Store(n)
	return r, nil
}

// Reservation is one query's claim against a Broker. Methods are safe for
// concurrent use (parallel sweep workers charge one shared reservation)
// and safe on a nil receiver (the disabled path).
type Reservation struct {
	b        *Broker
	granted  atomic.Int64 // bytes held at the broker
	used     atomic.Int64 // bytes charged by evaluation
	peak     atomic.Int64 // high-water of used
	released atomic.Bool
}

// Grow charges n more bytes, pulling additional chunks from the broker
// when the charge exceeds the current grant. On denial the charge is
// rolled back and the error wraps ErrResourceExhausted; the reservation
// stays valid (already-granted bytes remain held until Release).
func (r *Reservation) Grow(n int64) error {
	if r == nil || n <= 0 {
		return nil
	}
	if r.released.Load() {
		return fmt.Errorf("%w: reservation already released", ErrResourceExhausted)
	}
	used := r.used.Add(n)
	for {
		g := r.granted.Load()
		if used <= g {
			break
		}
		// The govern.reserve chaos site lives on the grow-more path, not
		// in Broker.TryAcquire: injected faults then model exactly a
		// mid-evaluation denial, without perturbing admission or the
		// plan-cache ledger.
		if err := faultinject.Point("govern.reserve"); err != nil {
			r.used.Add(-n)
			return fmt.Errorf("%w (%w)", ErrResourceExhausted, err)
		}
		want := used - g
		want = (want + reserveChunk - 1) / reserveChunk * reserveChunk
		if !r.b.TryAcquire(want) {
			r.used.Add(-n)
			return fmt.Errorf("%w: reservation needs %d more bytes (%d charged, %d of %d broker bytes reserved)",
				ErrResourceExhausted, want, used, r.b.reserved.Load(), r.b.budget)
		}
		if r.granted.CompareAndSwap(g, g+want) {
			break
		}
		// Lost the race to another goroutine growing the same
		// reservation; give the chunk back and re-check.
		r.b.Release(want)
	}
	updatePeak(&r.peak, used)
	return nil
}

// Shrink uncharges n bytes but keeps the broker grant (hysteresis: a
// query that shrinks and regrows does not hammer the broker). The grant
// is returned wholesale by Release.
func (r *Reservation) Shrink(n int64) {
	if r == nil || n <= 0 {
		return
	}
	if cur := r.used.Add(-n); cur < 0 {
		r.used.CompareAndSwap(cur, 0)
	}
}

// Release returns the entire grant to the broker. Idempotent: the pool
// worker, the drop-at-dequeue path, and the admission-failure path can
// each hold a release without coordination.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	if r.released.Swap(true) {
		return
	}
	r.b.Release(r.granted.Swap(0))
}

// Used returns the bytes currently charged.
func (r *Reservation) Used() int64 {
	if r == nil {
		return 0
	}
	return r.used.Load()
}

// Peak returns the high-water mark of charged bytes.
func (r *Reservation) Peak() int64 {
	if r == nil {
		return 0
	}
	return r.peak.Load()
}

// Granted returns the bytes currently held at the broker.
func (r *Reservation) Granted() int64 {
	if r == nil {
		return 0
	}
	return r.granted.Load()
}

// NewMeter opens a charging scope over the reservation. A nil reservation
// yields a nil meter, whose methods no-op without allocating.
func (r *Reservation) NewMeter() *Meter {
	if r == nil {
		return nil
	}
	return &Meter{r: r}
}

// Meter is a single-goroutine charging scope: Close shrinks everything
// the meter charged, making "release on all paths" a one-line defer for
// per-call data structures (product-search state tables, CQ join
// intermediates). Not safe for concurrent use — concurrent workers each
// take their own meter over the shared reservation.
type Meter struct {
	r       *Reservation
	charged int64
}

// Grow charges n bytes against the underlying reservation.
func (m *Meter) Grow(n int64) error {
	if m == nil || n <= 0 {
		return nil
	}
	if err := m.r.Grow(n); err != nil {
		return err
	}
	m.charged += n
	return nil
}

// Charge applies a signed delta: positive charges, negative releases
// (clamped to what this meter holds). It matches the cq.ChargeFunc shape
// so join intermediates can charge replacement deltas directly.
func (m *Meter) Charge(delta int64) error {
	if m == nil || delta == 0 {
		return nil
	}
	if delta > 0 {
		return m.Grow(delta)
	}
	d := -delta
	if d > m.charged {
		d = m.charged
	}
	m.r.Shrink(d)
	m.charged -= d
	return nil
}

// Charged returns the bytes this meter currently holds.
func (m *Meter) Charged() int64 {
	if m == nil {
		return 0
	}
	return m.charged
}

// Close releases everything the meter charged. Idempotent.
func (m *Meter) Close() {
	if m == nil || m.charged == 0 {
		return
	}
	m.r.Shrink(m.charged)
	m.charged = 0
}

// updatePeak lifts p to at least v.
func updatePeak(p *atomic.Int64, v int64) {
	for {
		cur := p.Load()
		if v <= cur || p.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ctxKey keys the reservation in a context.
type ctxKey struct{}

// NewContext attaches a reservation to the context so evaluation code can
// charge without signature changes. Attaching nil returns ctx unchanged.
func NewContext(ctx context.Context, r *Reservation) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the reservation attached to ctx, or nil (the
// disabled handle) when none is attached.
func FromContext(ctx context.Context) *Reservation {
	r, _ := ctx.Value(ctxKey{}).(*Reservation)
	return r
}

// MeterFrom opens a meter over the context's reservation; nil (free) when
// no reservation is attached.
func MeterFrom(ctx context.Context) *Meter {
	return FromContext(ctx).NewMeter()
}
