package govern

import (
	"math"
	"sync"
	"time"
)

// QuotaConfig sizes the per-client token buckets.
type QuotaConfig struct {
	// RatePerSec is the sustained request rate each client may hold.
	// <= 0 disables quota enforcement (NewQuota returns nil).
	RatePerSec float64
	// Burst is the bucket capacity; defaults to max(2*RatePerSec, 1).
	Burst float64
	// MaxClients bounds the bucket map so unauthenticated clients cannot
	// grow server memory without bound; defaults to 4096. When full, the
	// stalest bucket is recycled.
	MaxClients int
}

// Quota rate-limits requests per client identity (the X-Ecrpq-Client
// header; empty identities share one anonymous bucket). Token buckets
// refill continuously, so Allow also computes the exact Retry-After that
// would let the next request through. Nil-safe: a nil *Quota admits
// everything.
type Quota struct {
	rate       float64
	burst      float64
	maxClients int
	now        func() time.Time // injectable for deterministic tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewQuota builds a quota enforcer, or nil (disabled) when the rate is
// not positive.
func NewQuota(cfg QuotaConfig) *Quota {
	if cfg.RatePerSec <= 0 {
		return nil
	}
	if cfg.Burst <= 0 {
		cfg.Burst = math.Max(2*cfg.RatePerSec, 1)
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 4096
	}
	return &Quota{
		rate:       cfg.RatePerSec,
		burst:      cfg.Burst,
		maxClients: cfg.MaxClients,
		now:        time.Now,
		buckets:    make(map[string]*bucket),
	}
}

// Allow spends one token from the client's bucket. When the bucket is
// empty it reports false plus the duration after which one token will
// have refilled (the Retry-After hint).
func (q *Quota) Allow(client string) (ok bool, retryAfter time.Duration) {
	if q == nil {
		return true, 0
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[client]
	if b == nil {
		if len(q.buckets) >= q.maxClients {
			q.evictStalestLocked()
		}
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.burst, b.tokens+dt*q.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / q.rate
	return false, time.Duration(math.Ceil(need*1e3)) * time.Millisecond
}

// evictStalestLocked recycles the bucket touched longest ago. Linear scan
// is fine: it only runs when the map is at capacity, and the map is small.
func (q *Quota) evictStalestLocked() {
	var stalest string
	var when time.Time
	first := true
	for k, b := range q.buckets {
		if first || b.last.Before(when) {
			stalest, when, first = k, b.last, false
		}
	}
	delete(q.buckets, stalest)
}
