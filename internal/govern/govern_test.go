package govern

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBrokerAcquireRelease(t *testing.T) {
	b := NewBroker(1000)
	if !b.TryAcquire(600) {
		t.Fatal("first acquire should fit")
	}
	if !b.TryAcquire(400) {
		t.Fatal("second acquire should exactly fill the budget")
	}
	if b.TryAcquire(1) {
		t.Fatal("acquire past the budget must be denied")
	}
	b.Release(400)
	if !b.TryAcquire(300) {
		t.Fatal("released bytes should be reusable")
	}
	st := b.Stats()
	if st.ReservedBytes != 900 {
		t.Fatalf("reserved = %d, want 900", st.ReservedBytes)
	}
	if st.PeakBytes != 1000 {
		t.Fatalf("peak = %d, want 1000", st.PeakBytes)
	}
	if st.Denials != 1 {
		t.Fatalf("denials = %d, want 1", st.Denials)
	}
}

func TestBrokerUnlimitedStillAccounts(t *testing.T) {
	b := NewBroker(0)
	if !b.TryAcquire(1 << 40) {
		t.Fatal("unlimited broker must always grant")
	}
	if got := b.Reserved(); got != 1<<40 {
		t.Fatalf("reserved = %d, want %d", got, int64(1)<<40)
	}
	if b.Stats().PeakBytes != 1<<40 {
		t.Fatal("peak should track even without a budget")
	}
}

func TestBrokerReleaseClampsAtZero(t *testing.T) {
	b := NewBroker(100)
	b.Release(50) // release without acquire: caller bug, must not mint budget
	if got := b.Reserved(); got != 0 {
		t.Fatalf("reserved = %d, want 0 after spurious release", got)
	}
	if !b.TryAcquire(100) {
		t.Fatal("full budget should still be available")
	}
	if b.TryAcquire(1) {
		t.Fatal("spurious release must not create phantom budget")
	}
}

func TestNilBrokerAndReservation(t *testing.T) {
	var b *Broker
	if !b.TryAcquire(1 << 50) {
		t.Fatal("nil broker must grant everything")
	}
	b.Release(1)
	r, err := b.Reserve(1 << 20)
	if err != nil || r != nil {
		t.Fatalf("nil broker Reserve = (%v, %v), want (nil, nil)", r, err)
	}
	if err := r.Grow(1 << 30); err != nil {
		t.Fatalf("nil reservation Grow: %v", err)
	}
	r.Shrink(5)
	r.Release()
	if r.Used() != 0 || r.Peak() != 0 || r.Granted() != 0 {
		t.Fatal("nil reservation stats must be zero")
	}
	m := r.NewMeter()
	if m != nil {
		t.Fatal("nil reservation must yield a nil meter")
	}
	if err := m.Grow(1); err != nil {
		t.Fatalf("nil meter Grow: %v", err)
	}
	if err := m.Charge(-1); err != nil {
		t.Fatalf("nil meter Charge: %v", err)
	}
	m.Close()
}

func TestReservationChunkedGrow(t *testing.T) {
	b := NewBroker(10 << 20)
	r, err := b.Reserve(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if got := b.Reserved(); got != 1<<10 {
		t.Fatalf("initial grant = %d, want %d", got, 1<<10)
	}
	// Growing within the grant must not touch the broker.
	if err := r.Grow(512); err != nil {
		t.Fatal(err)
	}
	if got := b.Reserved(); got != 1<<10 {
		t.Fatalf("grow within grant changed broker reserved to %d", got)
	}
	// Growing past the grant pulls a whole chunk.
	if err := r.Grow(1 << 10); err != nil {
		t.Fatal(err)
	}
	if got := b.Reserved(); got != (1<<10)+reserveChunk {
		t.Fatalf("broker reserved = %d, want %d", got, (1<<10)+reserveChunk)
	}
	// Shrink keeps the grant (hysteresis): regrow is broker-free.
	before := b.Reserved()
	r.Shrink(1 << 10)
	if err := r.Grow(1 << 10); err != nil {
		t.Fatal(err)
	}
	if got := b.Reserved(); got != before {
		t.Fatalf("shrink/regrow touched the broker: %d != %d", got, before)
	}
}

func TestReservationDenialRollsBack(t *testing.T) {
	b := NewBroker(reserveChunk)
	r, err := b.Reserve(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if err := r.Grow(reserveChunk); err != nil {
		t.Fatal(err)
	}
	used := r.Used()
	err = r.Grow(1)
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("grow past budget = %v, want ErrResourceExhausted", err)
	}
	if got := r.Used(); got != used {
		t.Fatalf("denied grow leaked charge: used = %d, want %d", got, used)
	}
	// The reservation stays valid after a denial.
	r.Shrink(1)
	if err := r.Grow(1); err != nil {
		t.Fatalf("grow within grant after denial: %v", err)
	}
}

func TestReservationReleaseIdempotent(t *testing.T) {
	b := NewBroker(1 << 20)
	r, err := b.Reserve(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	r.Release()
	r.Release()
	if got := b.Reserved(); got != 0 {
		t.Fatalf("broker reserved = %d after double release, want 0", got)
	}
	if err := r.Grow(1); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("grow after release = %v, want ErrResourceExhausted", err)
	}
}

func TestReservationConcurrentGrow(t *testing.T) {
	b := NewBroker(0)
	r, err := b.Reserve(0)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 2000
	meters := make([]*Meter, workers)
	for w := range meters {
		meters[w] = r.NewMeter()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(m *Meter) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := m.Grow(64); err != nil {
					t.Error(err)
					return
				}
			}
		}(meters[w])
	}
	wg.Wait()
	if got := r.Used(); got != workers*per*64 {
		t.Fatalf("used = %d with all meters open, want %d", got, workers*per*64)
	}
	for _, m := range meters {
		m.Close()
	}
	if got := r.Used(); got != 0 {
		t.Fatalf("used = %d after all meters closed, want 0", got)
	}
	if peak := r.Peak(); peak != workers*per*64 {
		t.Fatalf("peak = %d, want %d", peak, workers*per*64)
	}
	r.Release()
	if got := b.Reserved(); got != 0 {
		t.Fatalf("broker reserved = %d after release, want 0", got)
	}
}

func TestMeterChargeSignedDelta(t *testing.T) {
	b := NewBroker(0)
	r, _ := b.Reserve(0)
	defer r.Release()
	m := r.NewMeter()
	if err := m.Charge(100); err != nil {
		t.Fatal(err)
	}
	if err := m.Charge(-30); err != nil {
		t.Fatal(err)
	}
	if got := m.Charged(); got != 70 {
		t.Fatalf("charged = %d, want 70", got)
	}
	// Releasing more than held clamps to zero instead of going negative.
	if err := m.Charge(-1000); err != nil {
		t.Fatal(err)
	}
	if got := m.Charged(); got != 0 {
		t.Fatalf("charged = %d, want 0 after over-release", got)
	}
	if got := r.Used(); got != 0 {
		t.Fatalf("reservation used = %d, want 0", got)
	}
	m.Close()
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("bare context should carry no reservation")
	}
	if NewContext(ctx, nil) != ctx {
		t.Fatal("attaching nil must return ctx unchanged")
	}
	b := NewBroker(1 << 20)
	r, _ := b.Reserve(0)
	defer r.Release()
	if got := FromContext(NewContext(ctx, r)); got != r {
		t.Fatalf("FromContext = %p, want %p", got, r)
	}
}

func TestQuotaTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	q := NewQuota(QuotaConfig{RatePerSec: 2, Burst: 2})
	q.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := q.Allow("c1"); !ok {
			t.Fatalf("burst request %d should pass", i)
		}
	}
	ok, retry := q.Allow("c1")
	if ok {
		t.Fatal("third immediate request must be limited")
	}
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 500ms] at 2 rps", retry)
	}
	// Other clients have their own buckets.
	if ok, _ := q.Allow("c2"); !ok {
		t.Fatal("fresh client must not be limited by c1")
	}
	// After the advertised wait, one token has refilled.
	now = now.Add(retry)
	if ok, _ := q.Allow("c1"); !ok {
		t.Fatal("request after Retry-After should pass")
	}
	if ok, _ := q.Allow("c1"); ok {
		t.Fatal("only one token should have refilled")
	}
}

func TestQuotaNilAndDisabled(t *testing.T) {
	if q := NewQuota(QuotaConfig{RatePerSec: 0}); q != nil {
		t.Fatal("rate 0 should disable quota")
	}
	var q *Quota
	if ok, retry := q.Allow("anyone"); !ok || retry != 0 {
		t.Fatal("nil quota must admit everything")
	}
}

func TestQuotaEvictsStalest(t *testing.T) {
	now := time.Unix(1000, 0)
	q := NewQuota(QuotaConfig{RatePerSec: 1, Burst: 1, MaxClients: 2})
	q.now = func() time.Time { return now }
	q.Allow("old")
	now = now.Add(time.Second)
	q.Allow("mid")
	now = now.Add(time.Second)
	q.Allow("new") // map at capacity: "old" is recycled
	if len(q.buckets) != 2 {
		t.Fatalf("bucket count = %d, want 2", len(q.buckets))
	}
	if _, ok := q.buckets["old"]; ok {
		t.Fatal("stalest bucket should have been evicted")
	}
}

func TestShedderQueueWait(t *testing.T) {
	s := NewShedder(ShedConfig{QueueWaitP99: 10 * time.Millisecond, MinSamples: 4, Window: 16}, nil)
	if shed, _ := s.ShouldShed(PriorityLow); shed {
		t.Fatal("cold shedder must not shed")
	}
	for i := 0; i < 8; i++ {
		s.Observe(50 * time.Millisecond)
	}
	shed, reason := s.ShouldShed(PriorityLow)
	if !shed || reason != "queue_wait" {
		t.Fatalf("ShouldShed(low) = (%v, %q), want (true, queue_wait)", shed, reason)
	}
	// Normal and high priority are never shed.
	if shed, _ := s.ShouldShed(PriorityNormal); shed {
		t.Fatal("normal priority must not be shed")
	}
	if shed, _ := s.ShouldShed(PriorityHigh); shed {
		t.Fatal("high priority must not be shed")
	}
	// The window recovers once waits drop.
	for i := 0; i < 16; i++ {
		s.Observe(time.Millisecond)
	}
	if shed, _ := s.ShouldShed(PriorityLow); shed {
		t.Fatal("shedder should recover when waits fall")
	}
}

func TestShedderMemoryFraction(t *testing.T) {
	b := NewBroker(1000)
	s := NewShedder(ShedConfig{MemFraction: 0.5}, b)
	if shed, _ := s.ShouldShed(PriorityLow); shed {
		t.Fatal("empty ledger must not shed")
	}
	b.TryAcquire(600)
	shed, reason := s.ShouldShed(PriorityLow)
	if !shed || reason != "memory" {
		t.Fatalf("ShouldShed(low) = (%v, %q), want (true, memory)", shed, reason)
	}
	b.Release(600)
	if shed, _ := s.ShouldShed(PriorityLow); shed {
		t.Fatal("shedder should recover when memory is released")
	}
}

func TestNilShedder(t *testing.T) {
	var s *Shedder
	s.Observe(time.Hour)
	if p := s.WaitP99(); p != 0 {
		t.Fatal("nil shedder p99 must be 0")
	}
	if shed, _ := s.ShouldShed(PriorityLow); shed {
		t.Fatal("nil shedder must never shed")
	}
}

func TestParsePriority(t *testing.T) {
	cases := map[string]Priority{
		"low": PriorityLow, "high": PriorityHigh, "normal": PriorityNormal,
		"": PriorityNormal, "urgent": PriorityNormal,
	}
	for in, want := range cases {
		if got := ParsePriority(in); got != want {
			t.Errorf("ParsePriority(%q) = %v, want %v", in, got, want)
		}
	}
	if PriorityLow.String() != "low" || PriorityHigh.String() != "high" || PriorityNormal.String() != "normal" {
		t.Fatal("Priority.String mismatch")
	}
}

// BenchmarkReservationDisabled is the zero-cost gate for the disabled
// path: evaluation code instruments allocation sites unconditionally, so
// when no reservation is attached (every library caller, every server
// without a broker... there is none: the server always has a broker, but
// core used directly does not) the nil-receiver calls must not allocate.
// make ci greps this benchmark for "0 allocs/op".
func BenchmarkReservationDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := FromContext(ctx)
		if err := r.Grow(64); err != nil {
			b.Fatal(err)
		}
		m := r.NewMeter()
		if err := m.Grow(128); err != nil {
			b.Fatal(err)
		}
		if err := m.Charge(-64); err != nil {
			b.Fatal(err)
		}
		m.Close()
		r.Shrink(32)
		r.Release()
	}
}

// BenchmarkReservationEnabled sizes the enabled-path cost (one atomic add
// per in-grant Grow) so regressions in the hot charging path show up.
func BenchmarkReservationEnabled(b *testing.B) {
	br := NewBroker(0)
	r, err := br.Reserve(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Release()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.Grow(64); err != nil {
			b.Fatal(err)
		}
		r.Shrink(64)
	}
}
