package govern

import (
	"sort"
	"sync"
	"time"
)

// Priority orders requests for overload shedding. The server parses it
// from the X-Ecrpq-Priority header; unknown or absent values are normal.
type Priority int

const (
	PriorityLow Priority = iota
	PriorityNormal
	PriorityHigh
)

// ParsePriority maps a header value to a Priority. Only "low" and "high"
// are recognized; everything else — including empty — is PriorityNormal.
func ParsePriority(s string) Priority {
	switch s {
	case "low":
		return PriorityLow
	case "high":
		return PriorityHigh
	default:
		return PriorityNormal
	}
}

func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityHigh:
		return "high"
	default:
		return "normal"
	}
}

// ShedConfig sets the overload thresholds.
type ShedConfig struct {
	// QueueWaitP99 sheds low-priority work when the p99 queue wait over
	// the sample window exceeds this. Defaults to 250ms.
	QueueWaitP99 time.Duration
	// MemFraction sheds low-priority work when broker reserved bytes
	// exceed this fraction of the budget (only meaningful with a budget).
	// Defaults to 0.9.
	MemFraction float64
	// Window is the number of queue-wait samples kept. Defaults to 256.
	Window int
	// MinSamples is how many waits must be observed before wait-based
	// shedding can trigger, so a cold server does not shed on noise.
	// Defaults to 32.
	MinSamples int
}

// Shedder decides, per request, whether the server is overloaded enough
// to reject low-priority work outright. It watches two signals: the p99
// of recent pool queue waits (the pool is wedged) and the broker's
// reserved-byte fraction (memory is nearly spent). Nil-safe: a nil
// *Shedder never sheds.
type Shedder struct {
	cfg    ShedConfig
	broker *Broker

	mu     sync.Mutex
	ring   []time.Duration
	next   int
	filled int
}

// NewShedder builds a shedder over the broker's ledger. broker may be nil
// (memory-based shedding then never triggers).
func NewShedder(cfg ShedConfig, broker *Broker) *Shedder {
	if cfg.QueueWaitP99 <= 0 {
		cfg.QueueWaitP99 = 250 * time.Millisecond
	}
	if cfg.MemFraction <= 0 || cfg.MemFraction > 1 {
		cfg.MemFraction = 0.9
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 32
	}
	if cfg.MinSamples > cfg.Window {
		cfg.MinSamples = cfg.Window
	}
	return &Shedder{cfg: cfg, broker: broker, ring: make([]time.Duration, cfg.Window)}
}

// Observe records one pool queue wait. Called by the pool's onWait hook.
func (s *Shedder) Observe(wait time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ring[s.next] = wait
	s.next = (s.next + 1) % len(s.ring)
	if s.filled < len(s.ring) {
		s.filled++
	}
	s.mu.Unlock()
}

// WaitP99 computes the p99 queue wait over the sample window (0 until
// MinSamples waits have been observed).
func (s *Shedder) WaitP99() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if s.filled < s.cfg.MinSamples {
		s.mu.Unlock()
		return 0
	}
	buf := make([]time.Duration, s.filled)
	copy(buf, s.ring[:s.filled])
	s.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := (len(buf)*99 + 99) / 100 // ceil(0.99*n), 1-based
	if idx > len(buf) {
		idx = len(buf)
	}
	return buf[idx-1]
}

// Overloaded reports whether either shed signal has crossed its
// threshold, and which one ("queue_wait" or "memory").
func (s *Shedder) Overloaded() (bool, string) {
	if s == nil {
		return false, ""
	}
	if p99 := s.WaitP99(); p99 > s.cfg.QueueWaitP99 {
		return true, "queue_wait"
	}
	if b := s.broker; b != nil && b.budget > 0 {
		if float64(b.reserved.Load()) >= s.cfg.MemFraction*float64(b.budget) {
			return true, "memory"
		}
	}
	return false, ""
}

// ShouldShed reports whether a request at the given priority should be
// rejected right now. Only low-priority work is ever shed: normal and
// high requests still compete for the queue and the memory budget, which
// then fail them individually rather than collectively.
func (s *Shedder) ShouldShed(p Priority) (bool, string) {
	if s == nil || p > PriorityLow {
		return false, ""
	}
	return s.Overloaded()
}
