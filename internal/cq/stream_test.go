package cq

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ecrpq/internal/stream"
)

// collectAnswers drains a StreamAnswers iterator and returns its rows
// lex-sorted for comparison against AllAnswers.
func collectAnswers(t *testing.T, s *Structure, q *Query) [][]int {
	t.Helper()
	it, err := StreamAnswers(NewStructSource(s), q, nil)
	if err != nil {
		t.Fatalf("StreamAnswers: %v", err)
	}
	defer it.Close()
	rows, err := stream.Collect(it)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
	return rows
}

func TestStreamAnswersMatchesAllAnswersRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		dom := 2 + rng.Intn(4)
		s := NewStructure(dom)
		if err := s.AddRelation("E", 2); err != nil {
			t.Fatal(err)
		}
		if err := s.AddRelation("U", 1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2+rng.Intn(2*dom*dom); i++ {
			s.MustAddTuple("E", rng.Intn(dom), rng.Intn(dom))
		}
		for i := 0; i < 1+rng.Intn(dom); i++ {
			s.MustAddTuple("U", rng.Intn(dom))
		}
		q := &Query{
			Atoms: []Atom{
				{Rel: "E", Args: []string{"x", "y"}},
				{Rel: "E", Args: []string{"y", "z"}},
				{Rel: "U", Args: []string{"x"}},
			},
			Free: []string{"x", "z"},
		}
		want, err := AllAnswers(s, q)
		if err != nil {
			t.Fatalf("trial %d: AllAnswers: %v", trial, err)
		}
		got := collectAnswers(t, s, q)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: stream %v, materialized %v", trial, got, want)
		}
	}
}

func TestStreamAnswersRepeatedVarInAtom(t *testing.T) {
	s := NewStructure(3)
	if err := s.AddRelation("E", 2); err != nil {
		t.Fatal(err)
	}
	s.MustAddTuple("E", 0, 1)
	s.MustAddTuple("E", 1, 1)
	s.MustAddTuple("E", 2, 2)
	q := &Query{Atoms: []Atom{{Rel: "E", Args: []string{"x", "x"}}}, Free: []string{"x"}}
	got := collectAnswers(t, s, q)
	want := [][]int{{1}, {2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestStreamAnswersDisjointAtoms(t *testing.T) {
	// Two atoms sharing no variables exercise the buffered hash-join level.
	s := NewStructure(4)
	if err := s.AddRelation("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRelation("B", 1); err != nil {
		t.Fatal(err)
	}
	s.MustAddTuple("A", 0)
	s.MustAddTuple("A", 1)
	s.MustAddTuple("B", 2)
	s.MustAddTuple("B", 3)
	q := &Query{
		Atoms: []Atom{{Rel: "A", Args: []string{"x"}}, {Rel: "B", Args: []string{"y"}}},
		Free:  []string{"x", "y"},
	}
	got := collectAnswers(t, s, q)
	want := [][]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestStreamAnswersBoolean(t *testing.T) {
	s := NewStructure(2)
	if err := s.AddRelation("E", 2); err != nil {
		t.Fatal(err)
	}
	q := &Query{Atoms: []Atom{{Rel: "E", Args: []string{"x", "y"}}}}

	got := collectAnswers(t, s, q) // no tuples: unsatisfiable
	if len(got) != 0 {
		t.Fatalf("unsat Boolean query yielded %v", got)
	}
	s.MustAddTuple("E", 0, 1)
	s.MustAddTuple("E", 1, 0)
	got = collectAnswers(t, s, q) // sat: exactly one empty tuple despite 2 derivations
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("sat Boolean query yielded %v, want one empty tuple", got)
	}
}

func TestStreamAnswersUnconstrainedFree(t *testing.T) {
	s := NewStructure(2)
	if err := s.AddRelation("E", 2); err != nil {
		t.Fatal(err)
	}
	q := &Query{Atoms: []Atom{{Rel: "E", Args: []string{"x", "y"}}}, Free: []string{"w"}}
	_, err := StreamAnswers(NewStructSource(s), q, nil)
	if !errors.Is(err, ErrUnconstrained) {
		t.Fatalf("err = %v, want ErrUnconstrained", err)
	}
}

func TestStreamAssignmentsFirstWitnessIsLazy(t *testing.T) {
	// The first assignment must not force a full scan of the first atom:
	// count tuples pulled through the source.
	s := NewStructure(100)
	if err := s.AddRelation("E", 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 99; i++ {
		s.MustAddTuple("E", i, i+1)
	}
	q := &Query{Atoms: []Atom{
		{Rel: "E", Args: []string{"x", "y"}},
		{Rel: "E", Args: []string{"y", "z"}},
	}}
	src := &countingSource{inner: NewStructSource(s)}
	asg, _, err := StreamAssignments(src, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer asg.Close()
	if _, ok := asg.Next(); !ok {
		t.Fatal("expected a witness")
	}
	if src.pulled > 10 {
		t.Fatalf("first witness pulled %d source tuples, want a handful", src.pulled)
	}
}

type countingSource struct {
	inner  AtomSource
	pulled int
}

func (c *countingSource) Open(rel string, bound []int) (stream.Tuples, error) {
	ts, err := c.inner.Open(rel, bound)
	if err != nil {
		return nil, err
	}
	return stream.Filter(ts, func([]int) bool { c.pulled++; return true }), nil
}
