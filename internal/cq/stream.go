package cq

// Streaming CQ evaluation: a pipelined join over atom streams, built on
// the internal/stream combinators. Where EvalTreeDecomp materializes bag
// tables bottom-up, StreamAnswers binds atoms left to right with one
// pull-iterator per level, pushing already-bound variables down into
// each atom scan. Answers come out incrementally, so "first witness" and
// "first page" cost a fraction of the full join — the Lemma 4.3 sweep
// behind the atom streams is only forced as far as the consumer pulls.

import (
	"errors"
	"fmt"

	"ecrpq/internal/stream"
)

// AtomSource streams the tuples of a relation with binding pushdown:
// Open returns an iterator over the tuples of rel matching the bound
// pattern, where bound[i] >= 0 pins position i and -1 leaves it free.
//
// Two Opens with equal arguments must yield equal sequences, and the
// sequence with bindings must be a subsequence of the unbound one —
// streaming enumeration order (and with it the /v1/enumerate cursor) is
// deterministic only if every source is.
type AtomSource interface {
	Open(rel string, bound []int) (stream.Tuples, error)
}

// ErrUnconstrained reports a free variable that appears in no atom: the
// streaming join cannot enumerate its bindings. Callers fall back to a
// domain-sweeping evaluator.
var ErrUnconstrained = errors.New("cq: free variable not constrained by any atom")

// structSource adapts a materialized Structure to AtomSource, scanning
// relation tuples in insertion order.
type structSource struct{ s *Structure }

// NewStructSource streams a Structure's relations in insertion order.
func NewStructSource(s *Structure) AtomSource { return structSource{s: s} }

func (ss structSource) Open(rel string, bound []int) (stream.Tuples, error) {
	r := ss.s.Relation(rel)
	if r == nil {
		return nil, fmt.Errorf("cq: unknown relation %q", rel)
	}
	if len(bound) != r.Arity {
		return nil, fmt.Errorf("cq: relation %q arity %d, bound pattern %v", rel, r.Arity, bound)
	}
	pat := append([]int(nil), bound...)
	return stream.Filter(stream.FromRows(r.Tuples), func(tup []int) bool {
		for i, b := range pat {
			if b >= 0 && tup[i] != b {
				return false
			}
		}
		return true
	}), nil
}

// streamLevel is one join level: an atom, the full-row column of each of
// its args, and whether this level binds that column for the first time.
type streamLevel struct {
	atom     Atom
	cols     []int
	isNew    []bool
	disjoint bool // shares no variable with earlier levels
	// per-level reusable scratch (levels run strictly sequentially)
	outerBuf []int
	boundBuf []int
	rowBuf   []int
}

// streamPlan lays out assignments as fixed-width rows, one column per
// variable in first-occurrence order over the atoms.
type streamPlan struct {
	vars   []string
	varCol map[string]int
	levels []*streamLevel
}

//ecrpq:charged plan-shaped scratch: O(atoms × arity) buffers sized by the query, not the data
func planStream(q *Query) (*streamPlan, error) {
	p := &streamPlan{varCol: make(map[string]int)}
	for _, at := range q.Atoms {
		for _, v := range at.Args {
			if _, ok := p.varCol[v]; !ok {
				p.varCol[v] = len(p.vars)
				p.vars = append(p.vars, v)
			}
		}
	}
	for _, f := range q.Free {
		if _, ok := p.varCol[f]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnconstrained, f)
		}
	}
	w := len(p.vars)
	boundSoFar := make(map[string]bool)
	for _, at := range q.Atoms {
		lvl := &streamLevel{
			atom:     at,
			cols:     make([]int, len(at.Args)),
			isNew:    make([]bool, len(at.Args)),
			disjoint: true,
			outerBuf: make([]int, w),
			boundBuf: make([]int, len(at.Args)),
			rowBuf:   make([]int, w),
		}
		inAtom := make(map[string]bool)
		for k, v := range at.Args {
			lvl.cols[k] = p.varCol[v]
			// A repeated variable inside one atom is "new" at both
			// positions when no earlier level bound it: neither position
			// has a value at Open time, so equality is enforced at merge.
			lvl.isNew[k] = !boundSoFar[v]
			if boundSoFar[v] {
				lvl.disjoint = false
			}
			inAtom[v] = true
		}
		for v := range inAtom {
			boundSoFar[v] = true
		}
		p.levels = append(p.levels, lvl)
	}
	return p, nil
}

// merge writes the atom tuple into a copy of the prefix row held in
// lvl.rowBuf, rejecting tuples inconsistent with existing bindings
// (including intra-atom repeated variables).
func (lvl *streamLevel) merge(prefix, tup []int) ([]int, bool) {
	copy(lvl.rowBuf, prefix)
	for k, col := range lvl.cols {
		v := tup[k]
		if lvl.rowBuf[col] >= 0 && lvl.rowBuf[col] != v {
			return nil, false
		}
		lvl.rowBuf[col] = v
	}
	return lvl.rowBuf, true
}

// StreamAssignments streams the satisfying assignments of q over src as
// fixed-width rows (one column per returned variable; every column is
// bound on yielded rows). Assignments are not deduplicated — distinct
// atom-tuple derivations of the same assignment yield repeats; project
// and Dedup downstream (StreamAnswers does both). charge accounts the
// buffered state of disjoint-atom hash joins; nil disables accounting.
//
// Atoms join in the order given. Levels that share a variable with the
// prefix run as nested-loop joins with binding pushdown; levels sharing
// none (after the first) run as buffered cross hash-joins, since
// re-scanning an unconstrained atom per prefix row would be quadratic.
func StreamAssignments(src AtomSource, q *Query, charge stream.ChargeFunc) (stream.Tuples, []string, error) {
	plan, err := planStream(q)
	if err != nil {
		return nil, nil, err
	}
	w := len(plan.vars)
	init := make([]int, w)
	for i := range init {
		init[i] = -1
	}
	it := stream.Once(init)
	for i, lvl := range plan.levels {
		if lvl.disjoint && i > 0 {
			next, err := hashLevel(src, it, lvl, w, charge)
			if err != nil {
				it.Close()
				return nil, nil, err
			}
			it = next
		} else {
			it = nestedLevel(src, it, lvl)
		}
	}
	return it, plan.vars, nil
}

// nestedLevel joins one atom by nested loop: per prefix row, open the
// atom stream with the prefix's bindings pushed down.
func nestedLevel(src AtomSource, outer stream.Tuples, lvl *streamLevel) stream.Tuples {
	return stream.NestedLoop(outer, func(prefix []int) (stream.Tuples, error) {
		copy(lvl.outerBuf, prefix) // prefix is only valid until the next outer pull
		for k, col := range lvl.cols {
			if lvl.isNew[k] {
				lvl.boundBuf[k] = -1
			} else {
				lvl.boundBuf[k] = lvl.outerBuf[col]
			}
		}
		ts, err := src.Open(lvl.atom.Rel, lvl.boundBuf)
		if err != nil {
			return nil, err
		}
		return stream.Map(ts, func(tup []int) ([]int, bool) {
			return lvl.merge(lvl.outerBuf, tup)
		}), nil
	})
}

// hashLevel joins a prefix-disjoint atom by buffering its tuples once
// (HashJoin's build side, charged) and cross-joining the prefix stream
// against them.
func hashLevel(src AtomSource, outer stream.Tuples, lvl *streamLevel, w int, charge stream.ChargeFunc) (stream.Tuples, error) {
	for k := range lvl.boundBuf {
		lvl.boundBuf[k] = -1
	}
	ts, err := src.Open(lvl.atom.Rel, lvl.boundBuf)
	if err != nil {
		return nil, err
	}
	joined := stream.HashJoin(outer, ts, nil, nil, charge)
	return stream.Map(joined, func(r []int) ([]int, bool) {
		return lvl.merge(r[:w], r[w:])
	}), nil
}

// StreamAnswers streams the answers of q over src in q.Free order,
// deduplicated (first derivation wins; the seen set is charged). Boolean
// queries yield at most one empty tuple. Free variables appearing in no
// atom fail with ErrUnconstrained.
func StreamAnswers(src AtomSource, q *Query, charge stream.ChargeFunc) (stream.Tuples, error) {
	asg, vars, err := StreamAssignments(src, q, charge)
	if err != nil {
		return nil, err
	}
	col := make(map[string]int, len(vars))
	for i, v := range vars {
		col[v] = i
	}
	cols := make([]int, len(q.Free))
	for i, f := range q.Free {
		cols[i] = col[f]
	}
	return stream.Dedup(stream.Project(asg, cols), charge), nil
}
