package cq

import (
	"fmt"
	"sort"
)

// Assignment maps query variables to domain elements.
type Assignment map[string]int

// EvalBacktrack decides Boolean satisfiability by backtracking search with
// forward checking: variables are assigned in an order that prefers
// variables constrained by already-grounded atoms, and every fully-grounded
// atom is checked as soon as possible. Returns a satisfying assignment if
// one exists.
//
//ecrpq:charged per-step scratch is one atom-arity tuple; peak live memory is the assignment map, sized by the query
func EvalBacktrack(s *Structure, q *Query) (Assignment, bool, error) {
	if err := q.Validate(s); err != nil {
		return nil, false, err
	}
	vars := q.Vars()
	if len(vars) == 0 {
		return Assignment{}, true, nil
	}
	// Candidate lists per variable from unary occurrences could prune more;
	// keep the core simple: order variables by connectivity (greedy: most
	// atoms shared with already-ordered variables first).
	order := orderVars(q, vars)
	assign := make(Assignment, len(vars))
	// Pre-index: for each variable, atoms whose last unassigned variable it
	// could be — checked dynamically instead for simplicity.
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(order) {
			return true
		}
		v := order[i]
		for d := 0; d < s.Domain; d++ {
			assign[v] = d
			ok := true
			for _, at := range q.Atoms {
				ground := true
				for _, a := range at.Args {
					if _, has := assign[a]; !has {
						ground = false
						break
					}
				}
				if !ground {
					continue
				}
				tuple := make([]int, len(at.Args))
				for k, a := range at.Args {
					tuple[k] = assign[a]
				}
				if !s.Contains(at.Rel, tuple...) {
					ok = false
					break
				}
			}
			if ok && rec(i+1) {
				return true
			}
			delete(assign, v)
		}
		return false
	}
	if rec(0) {
		return assign, true, nil
	}
	return nil, false, nil
}

// orderVars greedily orders variables so each next choice is constrained
// by as many already-grounded atoms as possible.
//
//ecrpq:charged query-sized: allocates one ordering over the variable list
func orderVars(q *Query, vars []string) []string {
	remaining := make(map[string]bool, len(vars))
	for _, v := range vars {
		remaining[v] = true
	}
	var order []string
	chosen := make(map[string]bool)
	for len(order) < len(vars) {
		best, bestScore := "", -1
		for _, v := range vars {
			if chosen[v] {
				continue
			}
			score := 0
			for _, at := range q.Atoms {
				has, linked := false, false
				for _, a := range at.Args {
					if a == v {
						has = true
					}
					if chosen[a] {
						linked = true
					}
				}
				if has && linked {
					score += 2
				} else if has {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		order = append(order, best)
		chosen[best] = true
	}
	return order
}

// table is an intermediate join result: a column list plus rows.
type table struct {
	cols []string
	rows [][]int
}

func (t *table) colIndex(c string) int {
	for i, x := range t.cols {
		if x == c {
			return i
		}
	}
	return -1
}

// joinTables performs a natural join of two tables (hash join on shared
// columns).
//
//ecrpq:charged intermediate bytes are charged by the caller: EvalTreeDecompBudget reports each bag's table delta through its ChargeFunc
func joinTables(a, b *table) *table {
	var shared []int // pairs flattened: a-index, b-index
	for bi, c := range b.cols {
		if ai := a.colIndex(c); ai >= 0 {
			shared = append(shared, ai, bi)
		}
	}
	// Output columns: a's columns then b's non-shared columns.
	var bExtra []int
	out := &table{cols: append([]string(nil), a.cols...)}
	for bi, c := range b.cols {
		if a.colIndex(c) < 0 {
			out.cols = append(out.cols, c)
			bExtra = append(bExtra, bi)
		}
	}
	// Hash b on shared key.
	keyOf := func(row []int, idxs []int, step, off int) string {
		buf := make([]byte, 0, 4*len(idxs)/step)
		for i := off; i < len(idxs); i += step {
			v := row[idxs[i]]
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		return string(buf)
	}
	h := make(map[string][][]int)
	for _, row := range b.rows {
		k := keyOf(row, shared, 2, 1)
		h[k] = append(h[k], row)
	}
	for _, arow := range a.rows {
		k := keyOf(arow, shared, 2, 0)
		for _, brow := range h[k] {
			nr := make([]int, 0, len(out.cols))
			nr = append(nr, arow...)
			for _, bi := range bExtra {
				nr = append(nr, brow[bi])
			}
			out.rows = append(out.rows, nr)
		}
	}
	return out
}

// semijoin removes from a the rows with no matching row in b on shared
// columns. If no columns are shared, a survives iff b is non-empty.
//
//ecrpq:charged never grows beyond its input: output rows are a subset of a's, charged by the caller's bag delta
func semijoin(a, b *table) *table {
	var aIdx, bIdx []int
	for bi, c := range b.cols {
		if ai := a.colIndex(c); ai >= 0 {
			aIdx = append(aIdx, ai)
			bIdx = append(bIdx, bi)
		}
	}
	if len(aIdx) == 0 {
		if len(b.rows) == 0 {
			return &table{cols: a.cols}
		}
		return a
	}
	h := make(map[string]bool)
	mk := func(row []int, idxs []int) string {
		buf := make([]byte, 0, 4*len(idxs))
		for _, i := range idxs {
			v := row[i]
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		return string(buf)
	}
	for _, row := range b.rows {
		h[mk(row, bIdx)] = true
	}
	out := &table{cols: a.cols}
	for _, row := range a.rows {
		if h[mk(row, aIdx)] {
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// dedup removes duplicate rows in place.
//
//ecrpq:charged shrinking pass over an already-charged table; the seen-set scratch is released at return
func (t *table) dedup() {
	seen := make(map[string]bool, len(t.rows))
	out := t.rows[:0]
	for _, r := range t.rows {
		k := key(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	t.rows = out
}

// atomTable materializes an atom as a table over its distinct variables,
// filtering tuples inconsistent with repeated variables.
//
//ecrpq:charged intermediate bytes are charged by the caller: EvalTreeDecompBudget reports each bag's table delta through its ChargeFunc
func atomTable(s *Structure, at Atom) *table {
	rel := s.Relation(at.Rel)
	// Distinct variables in order; positions per variable.
	var cols []string
	pos := make(map[string][]int)
	for i, v := range at.Args {
		if _, ok := pos[v]; !ok {
			cols = append(cols, v)
		}
		pos[v] = append(pos[v], i)
	}
	t := &table{cols: cols}
	for _, tup := range rel.Tuples {
		ok := true
		row := make([]int, len(cols))
		for ci, v := range cols {
			ps := pos[v]
			row[ci] = tup[ps[0]]
			for _, p := range ps[1:] {
				if tup[p] != row[ci] {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			t.rows = append(t.rows, row)
		}
	}
	t.dedup()
	return t
}

// ChargeFunc accounts join-intermediate bytes during tree-decomposition
// evaluation: positive deltas charge, negative deltas release (a table was
// replaced by a smaller one). Returning an error aborts the evaluation —
// the caller's budget is exhausted. A nil ChargeFunc disables accounting.
type ChargeFunc func(deltaBytes int64) error

// tableBytes estimates the live size of an intermediate join table.
func tableBytes(t *table) int64 {
	return 64 + int64(len(t.rows))*(24+8*int64(len(t.cols)))
}

// EvalTreeDecomp decides Boolean satisfiability via a tree-decomposition
// dynamic program over the query's Gaifman graph: atoms are assigned to bags
// containing all their variables, bag tables are the joins of their assigned
// atoms extended over uncovered bag variables, and a bottom-up semijoin pass
// over the decomposition decides satisfiability. For fixed decomposition
// width w this runs in time O(poly(|D|^{w+1})) — the Proposition 2.3
// algorithm. A satisfying assignment is reconstructed top-down.
func EvalTreeDecomp(s *Structure, q *Query) (Assignment, bool, error) {
	return EvalTreeDecompBudget(s, q, nil)
}

// EvalTreeDecompBudget is EvalTreeDecomp with byte accounting: every time a
// bag table is built, extended, or replaced by a semijoin, the size delta is
// reported through charge, so a resource governor sees join intermediates as
// they grow and can abort the query before they exhaust the process budget.
func EvalTreeDecompBudget(s *Structure, q *Query, charge ChargeFunc) (Assignment, bool, error) {
	if err := q.Validate(s); err != nil {
		return nil, false, err
	}
	vars := q.Vars()
	if len(vars) == 0 {
		return Assignment{}, true, nil
	}
	g, varNames := q.GaifmanGraph()
	td := g.Decompose()
	// Bags as variable-name sets.
	bags := make([][]string, len(td.Bags))
	for i, b := range td.Bags {
		for _, v := range b {
			bags[i] = append(bags[i], varNames[v])
		}
		sort.Strings(bags[i])
	}
	// Assign each atom to a bag containing all its variables. Such a bag
	// exists because an atom's variables form a clique in the Gaifman graph.
	atomBag := make([]int, len(q.Atoms))
	for ai, at := range q.Atoms {
		found := -1
		for bi, bag := range bags {
			if containsAll(bag, at.Args) {
				found = bi
				break
			}
		}
		if found < 0 {
			return nil, false, fmt.Errorf("cq: no bag covers atom %d (decomposition bug)", ai)
		}
		atomBag[ai] = found
	}
	// Build bag tables. curBytes tracks each bag's charged size so every
	// replacement (join, extension, dedup, later semijoin) reports only the
	// delta — the charge function sees a running approximation of live
	// intermediate bytes, not a monotone total.
	tables := make([]*table, len(bags))
	curBytes := make([]int64, len(bags))
	account := func(bi int, t *table) error {
		if charge == nil {
			return nil
		}
		nb := tableBytes(t)
		if err := charge(nb - curBytes[bi]); err != nil {
			return err
		}
		curBytes[bi] = nb
		return nil
	}
	for bi, bag := range bags {
		t := &table{cols: nil, rows: [][]int{{}}}
		for ai, at := range q.Atoms {
			if atomBag[ai] != bi {
				continue
			}
			t = joinTables(t, atomTable(s, at))
			if err := account(bi, t); err != nil {
				return nil, false, err
			}
			if len(t.rows) == 0 {
				break
			}
		}
		// Extend over uncovered bag variables.
		for _, v := range bag {
			if t.colIndex(v) >= 0 {
				continue
			}
			ext := &table{cols: append(append([]string(nil), t.cols...), v)}
			for _, row := range t.rows {
				for d := 0; d < s.Domain; d++ {
					nr := make([]int, 0, len(row)+1)
					nr = append(nr, row...)
					nr = append(nr, d)
					ext.rows = append(ext.rows, nr)
				}
			}
			t = ext
			if err := account(bi, t); err != nil {
				return nil, false, err
			}
		}
		t.dedup()
		if err := account(bi, t); err != nil {
			return nil, false, err
		}
		tables[bi] = t
	}
	// Build decomposition tree adjacency; the decomposition may be a forest
	// (disconnected query), handle each tree.
	nb := len(bags)
	adj := make([][]int, nb)
	for _, e := range td.TreeEdges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	visited := make([]bool, nb)
	parent := make([]int, nb)
	var roots []int
	var orderAll []int
	for r := 0; r < nb; r++ {
		if visited[r] {
			continue
		}
		roots = append(roots, r)
		parent[r] = -1
		visited[r] = true
		stack := []int{r}
		var comp []int
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, b)
			for _, c := range adj[b] {
				if !visited[c] {
					visited[c] = true
					parent[c] = b
					stack = append(stack, c)
				}
			}
		}
		orderAll = append(orderAll, comp...)
	}
	// Bottom-up semijoin (children into parents), processing in reverse
	// discovery order.
	for i := len(orderAll) - 1; i >= 0; i-- {
		b := orderAll[i]
		p := parent[b]
		if p < 0 {
			continue
		}
		tables[p] = semijoin(tables[p], tables[b])
		if err := account(p, tables[p]); err != nil {
			return nil, false, err
		}
	}
	for _, r := range roots {
		if len(tables[r].rows) == 0 {
			return nil, false, nil
		}
	}
	// Top-down witness extraction: fix the root rows, then for each child
	// pick a row consistent with its parent's chosen row.
	chosen := make([][]int, nb)
	assign := make(Assignment)
	for _, b := range orderAll { // parents before children in discovery order
		t := tables[b]
		var pick []int
		if parent[b] < 0 {
			pick = t.rows[0]
		} else {
			prow := chosen[parent[b]]
			ptab := tables[parent[b]]
			for _, row := range t.rows {
				ok := true
				for ci, c := range t.cols {
					if pi := ptab.colIndex(c); pi >= 0 && prow[pi] != row[ci] {
						ok = false
						break
					}
				}
				// Also consistent with the global assignment so far (shared
				// variables across separators are covered by parent check,
				// but assign covers cross-branch consistency too).
				if ok {
					for ci, c := range t.cols {
						if v, has := assign[c]; has && v != row[ci] {
							ok = false
							break
						}
					}
				}
				if ok {
					pick = row
					break
				}
			}
			if pick == nil {
				// Should not happen after semijoins; fall back to search.
				return EvalBacktrack(s, q)
			}
		}
		chosen[b] = pick
		for ci, c := range t.cols {
			assign[c] = pick[ci]
		}
	}
	// Variables in no bag cannot exist (every variable is in some bag).
	// Verify the assignment defensively.
	for _, at := range q.Atoms {
		tuple := make([]int, len(at.Args))
		for i, a := range at.Args {
			tuple[i] = assign[a]
		}
		if !s.Contains(at.Rel, tuple...) {
			// Semijoin certifies satisfiability; the greedy witness pick can
			// fail on diamond-shaped consistency, so fall back to search.
			return EvalBacktrack(s, q)
		}
	}
	return assign, true, nil
}

func containsAll(sorted []string, items []string) bool {
	for _, x := range items {
		i := sort.SearchStrings(sorted, x)
		if i >= len(sorted) || sorted[i] != x {
			return false
		}
	}
	return true
}

// AllAnswers enumerates the answer set over the free variables by
// substituting every combination of domain values for the free variables and
// deciding the resulting Boolean query with the tree-decomposition
// evaluator. The result is sorted lexicographically.
func AllAnswers(s *Structure, q *Query) ([][]int, error) {
	if err := q.Validate(s); err != nil {
		return nil, err
	}
	if len(q.Free) == 0 {
		return nil, fmt.Errorf("cq: AllAnswers on a Boolean query")
	}
	var out [][]int
	tuple := make([]int, len(q.Free))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(q.Free) {
			sub, err := substitute(s, q, tuple)
			if err != nil {
				return err
			}
			_, ok, err := EvalTreeDecomp(s, sub)
			if err != nil {
				return err
			}
			if ok {
				out = append(out, append([]int(nil), tuple...))
			}
			return nil
		}
		for d := 0; d < s.Domain; d++ {
			tuple[i] = d
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out, nil
}

// substitute pins free variables to constants by adding singleton unary
// relations const_<var>=<val> and the corresponding atoms.
//
//ecrpq:charged query-sized rewrite: adds one singleton relation and atom per free variable
func substitute(s *Structure, q *Query, values []int) (*Query, error) {
	out := &Query{Atoms: append([]Atom(nil), q.Atoms...)}
	for i, f := range q.Free {
		name := fmt.Sprintf("__const_%s_%d", f, values[i])
		if s.Relation(name) == nil {
			if err := s.AddRelation(name, 1); err != nil {
				return nil, err
			}
			if err := s.AddTuple(name, values[i]); err != nil {
				return nil, err
			}
		}
		out.Atoms = append(out.Atoms, Atom{Rel: name, Args: []string{f}})
	}
	return out, nil
}
