// Package cq implements conjunctive queries over finite relational
// structures and two evaluators: exhaustive backtracking, and the
// tree-decomposition dynamic program that makes bounded-treewidth evaluation
// polynomial (Proposition 2.3 of the paper). It is the target of the
// ECRPQ-to-CQ reduction of Lemma 4.3.
package cq

import (
	"fmt"
	"sort"

	"ecrpq/internal/invariant"
	"ecrpq/internal/twolevel"
)

// Structure is a finite relational structure with domain {0, ..., Domain-1}
// and named relations.
type Structure struct {
	Domain int
	rels   map[string]*Relation
}

// Relation is a named relation: a set of tuples over the domain.
type Relation struct {
	Arity  int
	Tuples [][]int
	index  map[string]bool
}

// NewStructure returns a structure with the given domain size.
func NewStructure(domain int) *Structure {
	return &Structure{Domain: domain, rels: make(map[string]*Relation)}
}

// AddRelation declares a relation. Re-declaring a name is an error.
func (s *Structure) AddRelation(name string, arity int) error {
	if _, ok := s.rels[name]; ok {
		return fmt.Errorf("cq: duplicate relation %q", name)
	}
	if arity < 1 {
		return fmt.Errorf("cq: relation %q arity %d < 1", name, arity)
	}
	s.rels[name] = &Relation{Arity: arity, index: make(map[string]bool)}
	return nil
}

// AddTuple inserts a tuple into a declared relation. Duplicates are ignored.
func (s *Structure) AddTuple(name string, tuple ...int) error {
	r, ok := s.rels[name]
	if !ok {
		return fmt.Errorf("cq: unknown relation %q", name)
	}
	if len(tuple) != r.Arity {
		return fmt.Errorf("cq: relation %q arity %d, tuple %v", name, r.Arity, tuple)
	}
	for _, v := range tuple {
		if v < 0 || v >= s.Domain {
			return fmt.Errorf("cq: tuple value %d outside domain", v)
		}
	}
	k := key(tuple)
	if r.index[k] {
		return nil
	}
	r.index[k] = true
	cp := make([]int, len(tuple))
	copy(cp, tuple)
	r.Tuples = append(r.Tuples, cp)
	return nil
}

// MustAddTuple is AddTuple, panicking on error.
func (s *Structure) MustAddTuple(name string, tuple ...int) {
	invariant.NoError(s.AddTuple(name, tuple...), "cq: MustAddTuple")
}

// Contains reports whether the relation holds the tuple.
func (s *Structure) Contains(name string, tuple ...int) bool {
	r, ok := s.rels[name]
	if !ok || len(tuple) != r.Arity {
		return false
	}
	return r.index[key(tuple)]
}

// RelationNames returns the declared relation names, sorted.
//
//ecrpq:charged schema-sized accessor (one string per declared relation)
func (s *Structure) RelationNames() []string {
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Relation returns the named relation (nil if absent).
func (s *Structure) Relation(name string) *Relation { return s.rels[name] }

// NumTuples returns the total number of tuples across relations.
func (s *Structure) NumTuples() int {
	n := 0
	for _, r := range s.rels {
		n += len(r.Tuples)
	}
	return n
}

func key(tuple []int) string {
	buf := make([]byte, 4*len(tuple))
	for i, v := range tuple {
		buf[4*i] = byte(v)
		buf[4*i+1] = byte(v >> 8)
		buf[4*i+2] = byte(v >> 16)
		buf[4*i+3] = byte(v >> 24)
	}
	return string(buf)
}

// Atom is a conjunctive-query atom Rel(Args...).
type Atom struct {
	Rel  string
	Args []string
}

// Query is a conjunctive query. Free lists the free variables (empty means
// Boolean).
type Query struct {
	Atoms []Atom
	Free  []string
}

// Vars returns the variables of the query in first-occurrence order.
//
//ecrpq:charged query-sized accessor (one entry per distinct variable)
func (q *Query) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range q.Free {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, at := range q.Atoms {
		for _, v := range at.Args {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Validate checks atoms against the structure's signature.
func (q *Query) Validate(s *Structure) error {
	varSeen := make(map[string]bool)
	for i, at := range q.Atoms {
		r := s.Relation(at.Rel)
		if r == nil {
			return fmt.Errorf("cq: atom %d uses unknown relation %q", i, at.Rel)
		}
		if len(at.Args) != r.Arity {
			return fmt.Errorf("cq: atom %d has %d args for arity-%d relation %q",
				i, len(at.Args), r.Arity, at.Rel)
		}
		for _, v := range at.Args {
			if v == "" {
				return fmt.Errorf("cq: atom %d has empty variable", i)
			}
			varSeen[v] = true
		}
	}
	for _, f := range q.Free {
		if !varSeen[f] {
			return fmt.Errorf("cq: free variable %q not in query", f)
		}
	}
	return nil
}

// GaifmanGraph returns the Gaifman (primal) graph of the query together with
// the variable order indexing its vertices.
func (q *Query) GaifmanGraph() (*twolevel.SimpleGraph, []string) {
	vars := q.Vars()
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	g := twolevel.NewSimpleGraph(len(vars))
	for _, at := range q.Atoms {
		for i := 0; i < len(at.Args); i++ {
			for j := i + 1; j < len(at.Args); j++ {
				g.AddEdge(idx[at.Args[i]], idx[at.Args[j]])
			}
		}
	}
	return g, vars
}

// Treewidth returns treewidth bounds of the query's Gaifman graph.
func (q *Query) Treewidth() (lower, upper int, exact bool) {
	g, _ := q.GaifmanGraph()
	return g.Treewidth()
}
