package cq

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// pathStructure builds a structure with a binary relation E forming a
// directed path 0 → 1 → ... → n-1.
func pathStructure(n int) *Structure {
	s := NewStructure(n)
	if err := s.AddRelation("E", 2); err != nil {
		panic(err)
	}
	for i := 0; i+1 < n; i++ {
		s.MustAddTuple("E", i, i+1)
	}
	return s
}

func TestStructureBasics(t *testing.T) {
	s := pathStructure(4)
	if s.Domain != 4 || s.NumTuples() != 3 {
		t.Fatalf("domain=%d tuples=%d", s.Domain, s.NumTuples())
	}
	if !s.Contains("E", 1, 2) || s.Contains("E", 2, 1) {
		t.Error("Contains wrong")
	}
	if s.Contains("F", 0, 1) || s.Contains("E", 0) {
		t.Error("unknown relation / wrong arity should be false")
	}
	if err := s.AddRelation("E", 2); err == nil {
		t.Error("duplicate relation should fail")
	}
	if err := s.AddRelation("Z", 0); err == nil {
		t.Error("arity 0 should fail")
	}
	if err := s.AddTuple("E", 0, 99); err == nil {
		t.Error("out-of-domain should fail")
	}
	if err := s.AddTuple("nope", 0); err == nil {
		t.Error("unknown relation should fail")
	}
	if err := s.AddTuple("E", 0); err == nil {
		t.Error("wrong arity should fail")
	}
	s.MustAddTuple("E", 0, 1) // duplicate ignored
	if s.NumTuples() != 3 {
		t.Error("duplicate tuple counted")
	}
	names := s.RelationNames()
	if len(names) != 1 || names[0] != "E" {
		t.Errorf("names = %v", names)
	}
}

func TestQueryValidate(t *testing.T) {
	s := pathStructure(3)
	good := &Query{Atoms: []Atom{{Rel: "E", Args: []string{"x", "y"}}}}
	if err := good.Validate(s); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	bad := []*Query{
		{Atoms: []Atom{{Rel: "F", Args: []string{"x", "y"}}}},
		{Atoms: []Atom{{Rel: "E", Args: []string{"x"}}}},
		{Atoms: []Atom{{Rel: "E", Args: []string{"x", ""}}}},
		{Atoms: []Atom{{Rel: "E", Args: []string{"x", "y"}}}, Free: []string{"z"}},
	}
	for i, q := range bad {
		if err := q.Validate(s); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestVarsOrder(t *testing.T) {
	q := &Query{
		Atoms: []Atom{{Rel: "E", Args: []string{"b", "a"}}, {Rel: "E", Args: []string{"a", "c"}}},
		Free:  []string{"c"},
	}
	vars := q.Vars()
	if len(vars) != 3 || vars[0] != "c" || vars[1] != "b" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestGaifmanGraph(t *testing.T) {
	q := &Query{Atoms: []Atom{
		{Rel: "R", Args: []string{"x", "y", "z"}},
		{Rel: "E", Args: []string{"z", "w"}},
	}}
	g, vars := q.GaifmanGraph()
	if g.N != 4 {
		t.Fatalf("N = %d", g.N)
	}
	idx := map[string]int{}
	for i, v := range vars {
		idx[v] = i
	}
	// Ternary atom → triangle.
	for _, pair := range [][2]string{{"x", "y"}, {"y", "z"}, {"x", "z"}, {"z", "w"}} {
		if !g.HasEdge(idx[pair[0]], idx[pair[1]]) {
			t.Errorf("missing Gaifman edge %v", pair)
		}
	}
	if g.HasEdge(idx["x"], idx["w"]) {
		t.Error("extra Gaifman edge")
	}
}

func evalBoth(t *testing.T, s *Structure, q *Query) bool {
	t.Helper()
	a1, ok1, err1 := EvalBacktrack(s, q)
	a2, ok2, err2 := EvalTreeDecomp(s, q)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v / %v", err1, err2)
	}
	if ok1 != ok2 {
		t.Fatalf("evaluators disagree: backtrack=%v treedecomp=%v", ok1, ok2)
	}
	if ok1 {
		checkAssignment(t, s, q, a1)
		checkAssignment(t, s, q, a2)
	}
	return ok1
}

func checkAssignment(t *testing.T, s *Structure, q *Query, a Assignment) {
	t.Helper()
	for _, at := range q.Atoms {
		tuple := make([]int, len(at.Args))
		for i, v := range at.Args {
			x, ok := a[v]
			if !ok {
				t.Fatalf("assignment missing %q", v)
			}
			tuple[i] = x
		}
		if !s.Contains(at.Rel, tuple...) {
			t.Fatalf("assignment violates %v", at)
		}
	}
}

func TestEvalPathQueries(t *testing.T) {
	s := pathStructure(5)
	// Path of length 3 exists.
	q3 := &Query{Atoms: []Atom{
		{Rel: "E", Args: []string{"a", "b"}},
		{Rel: "E", Args: []string{"b", "c"}},
		{Rel: "E", Args: []string{"c", "d"}},
	}}
	if !evalBoth(t, s, q3) {
		t.Error("length-3 path should exist")
	}
	// Path of length 5 does not.
	q5 := &Query{Atoms: []Atom{
		{Rel: "E", Args: []string{"a", "b"}},
		{Rel: "E", Args: []string{"b", "c"}},
		{Rel: "E", Args: []string{"c", "d"}},
		{Rel: "E", Args: []string{"d", "e"}},
		{Rel: "E", Args: []string{"e", "f"}},
	}}
	if evalBoth(t, s, q5) {
		t.Error("length-5 path should not exist in a 5-vertex path")
	}
	// Cycle query on an acyclic structure.
	qc := &Query{Atoms: []Atom{
		{Rel: "E", Args: []string{"a", "b"}},
		{Rel: "E", Args: []string{"b", "a"}},
	}}
	if evalBoth(t, s, qc) {
		t.Error("2-cycle should not exist")
	}
}

func TestEvalRepeatedVariable(t *testing.T) {
	s := pathStructure(3)
	// E(x, x): self-loop — none in a path.
	q := &Query{Atoms: []Atom{{Rel: "E", Args: []string{"x", "x"}}}}
	if evalBoth(t, s, q) {
		t.Error("self-loop should not exist")
	}
	s.MustAddTuple("E", 2, 2)
	if !evalBoth(t, s, q) {
		t.Error("self-loop now exists")
	}
}

func TestEvalEmptyQuery(t *testing.T) {
	s := pathStructure(2)
	q := &Query{}
	if !evalBoth(t, s, q) {
		t.Error("empty query should be satisfiable")
	}
}

func TestEvalDisconnectedQuery(t *testing.T) {
	s := pathStructure(4)
	s.AddRelation("U", 1)
	s.MustAddTuple("U", 3)
	q := &Query{Atoms: []Atom{
		{Rel: "E", Args: []string{"a", "b"}},
		{Rel: "U", Args: []string{"z"}},
	}}
	if !evalBoth(t, s, q) {
		t.Error("disconnected satisfiable query failed")
	}
	q2 := &Query{Atoms: []Atom{
		{Rel: "E", Args: []string{"a", "b"}},
		{Rel: "U", Args: []string{"z"}},
		{Rel: "E", Args: []string{"z", "w"}}, // U only holds 3, which has no outgoing edge
	}}
	if evalBoth(t, s, q2) {
		t.Error("should be unsatisfiable")
	}
}

func TestEvalHigherArity(t *testing.T) {
	s := NewStructure(4)
	s.AddRelation("T", 3)
	s.MustAddTuple("T", 0, 1, 2)
	s.MustAddTuple("T", 1, 2, 3)
	q := &Query{Atoms: []Atom{
		{Rel: "T", Args: []string{"x", "y", "z"}},
		{Rel: "T", Args: []string{"y", "z", "w"}},
	}}
	if !evalBoth(t, s, q) {
		t.Error("chained ternary atoms should match")
	}
	q2 := &Query{Atoms: []Atom{
		{Rel: "T", Args: []string{"x", "y", "x"}},
	}}
	if evalBoth(t, s, q2) {
		t.Error("no tuple with first=third")
	}
}

func TestAllAnswers(t *testing.T) {
	s := pathStructure(4)
	q := &Query{
		Atoms: []Atom{{Rel: "E", Args: []string{"x", "y"}}, {Rel: "E", Args: []string{"y", "z"}}},
		Free:  []string{"x", "z"},
	}
	ans, err := AllAnswers(s, q)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 2}, {1, 3}}
	if len(ans) != len(want) {
		t.Fatalf("answers = %v, want %v", ans, want)
	}
	for i := range want {
		if ans[i][0] != want[i][0] || ans[i][1] != want[i][1] {
			t.Errorf("answers = %v, want %v", ans, want)
		}
	}
	if _, err := AllAnswers(s, &Query{Atoms: q.Atoms}); err == nil {
		t.Error("AllAnswers on Boolean query should error")
	}
}

func TestTreewidthOfQuery(t *testing.T) {
	// Acyclic chain: tw 1.
	q := &Query{Atoms: []Atom{
		{Rel: "E", Args: []string{"a", "b"}},
		{Rel: "E", Args: []string{"b", "c"}},
	}}
	lo, hi, exact := q.Treewidth()
	if !exact || lo != 1 || hi != 1 {
		t.Errorf("chain tw = [%d,%d]", lo, hi)
	}
	// Triangle: tw 2.
	q2 := &Query{Atoms: []Atom{
		{Rel: "E", Args: []string{"a", "b"}},
		{Rel: "E", Args: []string{"b", "c"}},
		{Rel: "E", Args: []string{"c", "a"}},
	}}
	lo, _, _ = q2.Treewidth()
	if lo != 2 {
		t.Errorf("triangle tw = %d", lo)
	}
}

// randomInstance builds a random structure + query for the agreement
// property test.
func randomInstance(rng *rand.Rand) (*Structure, *Query) {
	dom := 2 + rng.Intn(4)
	s := NewStructure(dom)
	s.AddRelation("E", 2)
	s.AddRelation("U", 1)
	nE := rng.Intn(dom * 2)
	for i := 0; i < nE; i++ {
		s.MustAddTuple("E", rng.Intn(dom), rng.Intn(dom))
	}
	for i := 0; i < rng.Intn(dom); i++ {
		s.MustAddTuple("U", rng.Intn(dom))
	}
	varNames := []string{"a", "b", "c", "d", "e"}
	nAtoms := 1 + rng.Intn(4)
	q := &Query{}
	for i := 0; i < nAtoms; i++ {
		if rng.Intn(4) == 0 {
			q.Atoms = append(q.Atoms, Atom{Rel: "U", Args: []string{varNames[rng.Intn(len(varNames))]}})
		} else {
			q.Atoms = append(q.Atoms, Atom{Rel: "E", Args: []string{
				varNames[rng.Intn(len(varNames))], varNames[rng.Intn(len(varNames))]}})
		}
	}
	return s, q
}

func TestEvaluatorsAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, q := randomInstance(rng)
		_, ok1, err1 := EvalBacktrack(s, q)
		_, ok2, err2 := EvalTreeDecomp(s, q)
		if err1 != nil || err2 != nil {
			return false
		}
		if ok1 != ok2 {
			t.Logf("disagreement on seed %d: query %+v", seed, q)
			return false
		}
		// Cross-check with brute force over all assignments (domains small).
		vars := q.Vars()
		brute := false
		assign := make(Assignment)
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == len(vars) {
				for _, at := range q.Atoms {
					tuple := make([]int, len(at.Args))
					for k, a := range at.Args {
						tuple[k] = assign[a]
					}
					if !s.Contains(at.Rel, tuple...) {
						return false
					}
				}
				return true
			}
			for d := 0; d < s.Domain; d++ {
				assign[vars[i]] = d
				if rec(i + 1) {
					return true
				}
			}
			return false
		}
		brute = rec(0)
		return brute == ok1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestEvalLargerTreeShapedQuery(t *testing.T) {
	// Binary-tree-shaped query on a random-ish structure: exercises the
	// decomposition machinery on >2 bags.
	s := NewStructure(6)
	s.AddRelation("E", 2)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}, {1, 4}}
	for _, e := range edges {
		s.MustAddTuple("E", e[0], e[1])
	}
	var atoms []Atom
	for i := 0; i < 7; i++ {
		atoms = append(atoms, Atom{Rel: "E", Args: []string{
			fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", 2*i+1)}})
	}
	q := &Query{Atoms: atoms}
	if !evalBoth(t, s, q) {
		t.Error("tree query on cyclic structure should be satisfiable")
	}
}
