package ecrpq_test

import (
	"fmt"

	"ecrpq"
)

// ExampleEvaluate demonstrates Boolean evaluation with a synchronous
// relation and witness extraction.
func ExampleEvaluate() {
	db, _ := ecrpq.ParseDB(`
alphabet a b
u a m
m b z
u b n
n a z
`)
	q, _ := ecrpq.ParseQuery(`
alphabet a b
x -[$p1]-> y
x -[$p2]-> y
rel eqlen(p1, p2)
lang p1 ab
lang p2 ba
`)
	res, _ := ecrpq.Evaluate(db, q, ecrpq.Options{})
	fmt.Println(res.Sat)
	fmt.Println(res.Paths["p1"].Label().Format(db.Alphabet()))
	fmt.Println(res.Paths["p2"].Label().Format(db.Alphabet()))
	// Output:
	// true
	// ab
	// ba
}

// ExampleAnswers demonstrates answer-set computation for a free-variable
// query.
func ExampleAnswers() {
	db, _ := ecrpq.ParseDB(`
alphabet a
v0 a v1
v1 a v2
`)
	q, _ := ecrpq.ParseQuery(`
alphabet a
free x
x -[aa]-> y
`)
	answers, _ := ecrpq.Answers(db, q, ecrpq.Options{})
	for _, tup := range answers {
		fmt.Println(db.VertexName(tup[0]))
	}
	// Output:
	// v0
}

// ExampleQueryMeasures demonstrates the structural measures and the regime
// classification of Theorems 3.1 and 3.2.
func ExampleQueryMeasures() {
	q, _ := ecrpq.ParseQuery(`
alphabet a
x -[$p1]-> y
x -[$p2]-> y
x -[$p3]-> y
rel eqlen(p1, p2, p3)
`)
	m := ecrpq.QueryMeasures(q)
	fmt.Println("cc_vertex:", m.CCVertex)
	fmt.Println("cc_hedge:", m.CCHedge)
	ec, pc := ecrpq.Classify(false, true, true) // cc_vertex unbounded along this family
	fmt.Println("eval:", ec)
	fmt.Println("p-eval:", pc)
	// Output:
	// cc_vertex: 3
	// cc_hedge: 1
	// eval: PSPACE-complete
	// p-eval: XNL-complete
}

// ExampleSatisfiable demonstrates database-independent satisfiability with a
// canonical witness database.
func ExampleSatisfiable() {
	q, _ := ecrpq.ParseQuery(`
alphabet a b
x -[$p1]-> y
x -[$p2]-> y
rel eq(p1, p2)
lang p1 ab
`)
	db, res, sat, _ := ecrpq.Satisfiable(q)
	fmt.Println(sat)
	fmt.Println(db.NumVertices(), "vertices")
	fmt.Println(res.Paths["p1"].Label().Format(db.Alphabet()))
	// Output:
	// true
	// 4 vertices
	// ab
}

// ExampleExplain demonstrates evaluation-plan inspection.
func ExampleExplain() {
	q, _ := ecrpq.ParseQuery(`
alphabet a
x -[$p1]-> y
x -[$p2]-> y
rel eqlen(p1, p2)
`)
	plan, _ := ecrpq.Explain(q, ecrpq.Options{})
	fmt.Println("strategy:", plan.Strategy)
	fmt.Println("components:", len(plan.Components))
	// Output:
	// strategy: reduction
	// components: 1
}

// ExampleEvaluateUnion demonstrates UECRPQ evaluation.
func ExampleEvaluateUnion() {
	db, _ := ecrpq.ParseDB("alphabet a b\nu a v\n")
	u, _ := ecrpq.ParseUnionQuery(`
alphabet a b
x -[b]-> y
or
x -[a]-> y
`)
	res, _ := ecrpq.EvaluateUnion(db, u, ecrpq.Options{})
	fmt.Println(res.Sat, "via disjunct", res.Disjunct)
	// Output:
	// true via disjunct 1
}
