// Benchmarks mirroring the experiment suite (see DESIGN.md for the index
// and EXPERIMENTS.md for recorded results): one testing.B benchmark per
// experiment, each exercising the representative operation of that regime.
package ecrpq_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ecrpq/internal/alphabet"
	"ecrpq/internal/core"
	"ecrpq/internal/cq"
	"ecrpq/internal/graphdb"
	"ecrpq/internal/query"
	"ecrpq/internal/reductions"
	"ecrpq/internal/synchro"
	"ecrpq/internal/twolevel"
	"ecrpq/internal/workload"
)

func mustEvalB(b *testing.B, db *graphdb.DB, q *query.Query, opts core.Options) *core.Result {
	b.Helper()
	res, err := core.Evaluate(db, q, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkE1_TractableEval — Thm 3.2(3): bounded measures, database sweep.
func BenchmarkE1_TractableEval(b *testing.B) {
	a := alphabet.Lower(2)
	q := workload.PairChainQuery(a, 4)
	for _, n := range []int{12, 18, 27} {
		db := workload.RandomDB(rand.New(rand.NewSource(1)), a, n, 3*n)
		b.Run(fmt.Sprintf("V=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEvalB(b, db, q, core.Options{Strategy: core.Reduction})
			}
		})
	}
}

// BenchmarkE1b_TractableQuerySweep — Thm 3.2(3): query-size sweep.
func BenchmarkE1b_TractableQuerySweep(b *testing.B) {
	a := alphabet.Lower(2)
	db := workload.RandomDB(rand.New(rand.NewSource(1)), a, 16, 48)
	for _, k := range []int{4, 8, 12} {
		q := workload.PairChainQuery(a, k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEvalB(b, db, q, core.Options{Strategy: core.Reduction})
			}
		})
	}
}

// BenchmarkE2_NPRegime — Thm 3.2(2): clique size drives superpolynomial
// growth.
func BenchmarkE2_NPRegime(b *testing.B) {
	a := alphabet.Lower(2)
	for _, k := range []int{2, 3, 4} {
		db := cliqueDB(rand.New(rand.NewSource(1)), a, 18, k)
		q := workload.CliqueQuery(a, k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEvalB(b, db, q, core.Options{Strategy: core.Reduction})
			}
		})
	}
}

func cliqueDB(rng *rand.Rand, a *alphabet.Alphabet, n, k int) *graphdb.DB {
	db := graphdb.New(a)
	for i := 0; i < n; i++ {
		db.MustAddVertex("")
	}
	for i := 0; i < n; i++ {
		db.MustAddEdge(rng.Intn(n), 0, rng.Intn(n))
	}
	verts := rng.Perm(n)[:k]
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j {
				db.MustAddEdge(verts[i], 0, verts[j])
			}
		}
	}
	return db
}

// BenchmarkE3_PSPACERegime — Thm 3.2(1): one big component (Lemma 5.1
// case 1); time explodes in the component size.
func BenchmarkE3_PSPACERegime(b *testing.B) {
	a := alphabet.Lower(2)
	for _, n := range []int{2, 3} {
		in := workload.PlantedINE(rand.New(rand.NewSource(1)), a, n, 3, true)
		db, q, err := reductions.BigHyperedge(in)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEvalB(b, db, q, core.Options{Strategy: core.Generic})
			}
		})
	}
}

// BenchmarkE4_FPT — Thm 3.1(3): same data exponent at different fixed query
// sizes.
func BenchmarkE4_FPT(b *testing.B) {
	a := alphabet.Lower(2)
	for _, k := range []int{2, 6} {
		q := workload.PairChainQuery(a, k)
		for _, n := range []int{12, 24} {
			db := workload.RandomDB(rand.New(rand.NewSource(1)), a, n, 3*n)
			b.Run(fmt.Sprintf("k=%d/V=%d", k, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mustEvalB(b, db, q, core.Options{Strategy: core.Reduction})
				}
			})
		}
	}
}

// BenchmarkE5_W1 — Thm 3.1(2): the data exponent grows with the clique
// parameter.
func BenchmarkE5_W1(b *testing.B) {
	a := alphabet.Lower(2)
	for _, k := range []int{2, 3, 4} {
		q := workload.CliqueQuery(a, k)
		db := cliqueDB(rand.New(rand.NewSource(1)), a, 16, k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEvalB(b, db, q, core.Options{Strategy: core.Reduction})
			}
		})
	}
}

// BenchmarkE6_XNL — Thm 3.1(1): chain-encoded parameterized intersection
// non-emptiness.
func BenchmarkE6_XNL(b *testing.B) {
	a := alphabet.Lower(2)
	for _, k := range []int{2, 3, 4} {
		in := workload.PlantedINE(rand.New(rand.NewSource(1)), a, k, 3, true)
		db, q, err := reductions.Chain(in)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEvalB(b, db, q, core.Options{Strategy: core.Generic})
			}
		})
	}
}

// BenchmarkE7_MergeGrowth — Lemma 4.1: merged relation product size.
func BenchmarkE7_MergeGrowth(b *testing.B) {
	a := alphabet.Lower(2)
	h := synchro.HammingAtMost(a, 2)
	for _, l := range []int{2, 4} {
		rels := make([]*synchro.Relation, l)
		vars := make([][]int, l)
		for i := 0; i < l; i++ {
			rels[i] = h
			vars[i] = []int{i, i + 1}
		}
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := synchro.Join(a, l+1, rels, vars); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8_ReductionCost — Lemma 4.3: R' materialization cost grows with
// component arity.
func BenchmarkE8_ReductionCost(b *testing.B) {
	a := alphabet.Lower(2)
	for _, t := range []int{1, 2, 3} {
		q := workload.FanQuery(a, t)
		db := workload.RandomDB(rand.New(rand.NewSource(1)), a, 12, 24)
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEvalB(b, db, q, core.Options{Strategy: core.Reduction, MaxReductionTracks: 8})
			}
		})
	}
}

// BenchmarkE9_INEReduction — Lemma 5.1: build + evaluate vs direct product.
func BenchmarkE9_INEReduction(b *testing.B) {
	a := alphabet.Lower(2)
	in := workload.PlantedINE(rand.New(rand.NewSource(1)), a, 3, 3, true)
	b.Run("ecrpq-route", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, q, err := reductions.BigHyperedge(in)
			if err != nil {
				b.Fatal(err)
			}
			mustEvalB(b, db, q, core.Options{Strategy: core.Generic})
		}
	})
	b.Run("direct-product", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in.Solve()
		}
	})
}

// BenchmarkE10_CQReduction — Lemma 5.3: CQ evaluation via the ECRPQ
// encoding vs directly.
func BenchmarkE10_CQReduction(b *testing.B) {
	st, q := workload.CliqueCQ(rand.New(rand.NewSource(1)), 3, 6, 6, true)
	sub, comps, err := reductions.SubdivideCQ(st, q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ecrpq-route", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, eq, err := reductions.CQToECRPQ(sub, comps)
			if err != nil {
				b.Fatal(err)
			}
			mustEvalB(b, db, eq, core.Options{Strategy: core.Generic})
		}
	})
	b.Run("direct-cq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cq.EvalTreeDecomp(st, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11_DataComplexity — fixed query, per-strategy database scaling.
func BenchmarkE11_DataComplexity(b *testing.B) {
	a := alphabet.Lower(2)
	q := workload.PairChainQuery(a, 2)
	for _, n := range []int{12, 24} {
		db := workload.RandomDB(rand.New(rand.NewSource(1)), a, n, 3*n)
		for _, s := range []struct {
			name string
			opts core.Options
		}{
			{"generic", core.Options{Strategy: core.Generic}},
			{"reduction", core.Options{Strategy: core.Reduction}},
		} {
			b.Run(fmt.Sprintf("%s/V=%d", s.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mustEvalB(b, db, q, s.opts)
				}
			})
		}
	}
}

// BenchmarkE12_CRPQ — Corollary 2.4: plain CRPQ evaluation is polynomial.
func BenchmarkE12_CRPQ(b *testing.B) {
	a := alphabet.Lower(2)
	for _, k := range []int{4, 8} {
		q := workload.CRPQPathQuery(a, k)
		db := workload.RandomDB(rand.New(rand.NewSource(1)), a, 40, 120)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEvalB(b, db, q, core.Options{Strategy: core.Reduction})
			}
		})
	}
}

// BenchmarkAblation_Strategy — generic vs reduction on the same instance.
func BenchmarkAblation_Strategy(b *testing.B) {
	a := alphabet.Lower(2)
	db := workload.RandomDB(rand.New(rand.NewSource(1)), a, 14, 42)
	q := workload.PairChainQuery(a, 4)
	for _, s := range []struct {
		name string
		opts core.Options
	}{
		{"generic-lazy", core.Options{Strategy: core.Generic}},
		{"generic-eager", core.Options{Strategy: core.Generic, EagerMerge: true}},
		{"reduction", core.Options{Strategy: core.Reduction}},
	} {
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEvalB(b, db, q, s.opts)
			}
		})
	}
}

// BenchmarkAblation_CQEval — backtracking vs tree-decomposition DP.
func BenchmarkAblation_CQEval(b *testing.B) {
	st, q := workload.CliqueCQ(rand.New(rand.NewSource(1)), 3, 16, 48, false)
	b.Run("backtrack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cq.EvalBacktrack(st, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("treedecomp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cq.EvalTreeDecomp(st, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_Treewidth — exact subset DP vs min-fill heuristic on
// random graphs near the exact-DP size limit.
func BenchmarkAblation_Treewidth(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := twolevel.NewSimpleGraph(14)
	for i := 0; i < 14; i++ {
		for j := i + 1; j < 14; j++ {
			if rng.Intn(3) == 0 {
				g.AddEdge(i, j)
			}
		}
	}
	b.Run("exact-dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Treewidth()
		}
	})
	b.Run("min-fill", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Decompose()
		}
	})
}
