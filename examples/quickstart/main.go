// Quickstart: build a small graph database, ask an ECRPQ question with a
// synchronous relation (equal length), and print the witness paths.
//
// Run with:  go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ecrpq"
)

func main() {
	// A toy network: two branches from u to z with different labels.
	db, err := ecrpq.ParseDB(`
alphabet a b
u a m1
m1 a m2
m2 b z
u b n1
n1 a n2
n2 a z
`)
	if err != nil {
		log.Fatal(err)
	}

	// "Are there two paths from a common source to a common target with the
	// same length, one starting with a and the other with b?"
	q, err := ecrpq.ParseQuery(`
alphabet a b
x -[$p1]-> y
x -[$p2]-> y
rel eqlen(p1, p2)
lang p1 a(a|b)*
lang p2 b(a|b)*
`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := ecrpq.Evaluate(db, q, ecrpq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("satisfiable:", res.Sat)
	if res.Sat {
		if err := ecrpq.VerifyWitness(db, q, res); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  p1:", res.Paths["p1"].Format(db))
		fmt.Println("  p2:", res.Paths["p2"].Format(db))
	}

	// Structural measures and the regimes the paper's theorems predict for
	// query families bounded by them.
	m := ecrpq.QueryMeasures(q)
	fmt.Printf("measures: cc_vertex=%d cc_hedge=%d tw=%d\n",
		m.CCVertex, m.CCHedge, m.TreewidthUpper)
	ec, pc := ecrpq.Classify(true, true, true)
	fmt.Printf("bounded-measure family regime: eval %s, p-eval %s\n", ec, pc)
}
