// Equal-length routes (the paper's Example 2.1): in a transport network,
// find all pairs of stations from which some common destination is
// reachable by routes of exactly the same number of legs — e.g. to pair up
// synchronized shuttle schedules.
//
// Run with:  go run ./examples/equal-length
package main

import (
	"fmt"
	"log"

	"ecrpq"
)

func main() {
	// Stations and legs: t = train, s = shuttle.
	db, err := ecrpq.ParseDB(`
alphabet t s
airport t central
central t north
central s south
harbor s central
north t terminus
south t terminus
suburb s harbor
`)
	if err != nil {
		log.Fatal(err)
	}

	// q(x, x') = ∃y  x -p1-> y ∧ x' -p2-> y ∧ eq-len(p1, p2), requiring at
	// least one leg on each side (otherwise every pair (v, v) is an answer
	// via two empty routes).
	q, err := ecrpq.ParseQuery(`
alphabet t s
free x xp
x -[$p1]-> y
xp -[$p2]-> y
rel eqlen(p1, p2)
lang p1 (t|s)(t|s)*
lang p2 (t|s)(t|s)*
`)
	if err != nil {
		log.Fatal(err)
	}

	answers, err := ecrpq.Answers(db, q, ecrpq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("station pairs with equal-length routes to a common destination: %d\n", len(answers))
	for _, tup := range answers {
		if tup[0] >= tup[1] { // print each unordered pair once, skip trivial
			continue
		}
		fmt.Printf("  %s ↔ %s\n", db.VertexName(tup[0]), db.VertexName(tup[1]))
	}

	// Show one concrete witness for a chosen pair.
	airport, _ := db.Lookup("airport")
	harbor, _ := db.Lookup("harbor")
	found := false
	for _, tup := range answers {
		if tup[0] == airport && tup[1] == harbor {
			found = true
		}
	}
	fmt.Println("airport/harbor synchronized?", found)

	// A concrete witness for some satisfying pair.
	res, err := ecrpq.Evaluate(db, q, ecrpq.Options{Strategy: ecrpq.Generic})
	if err != nil {
		log.Fatal(err)
	}
	if res.Sat {
		if err := ecrpq.VerifyWitness(db, q, res); err != nil {
			log.Fatal(err)
		}
		fmt.Println("example witness:")
		fmt.Println("  p1:", res.Paths["p1"].Format(db))
		fmt.Println("  p2:", res.Paths["p2"].Format(db))
	}
}
