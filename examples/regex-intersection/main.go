// Regular-expression intersection through ECRPQ evaluation: the Lemma 5.1
// reduction in action. Deciding whether several regexes share a common word
// is the canonical PSPACE-complete problem, and the paper shows ECRPQ
// evaluation subsumes it as soon as relation components are unbounded —
// this example runs that encoding both ways and compares with the direct
// automaton product.
//
// Run with:  go run ./examples/regex-intersection
package main

import (
	"fmt"
	"log"

	"ecrpq"
	"ecrpq/internal/core"
	"ecrpq/internal/reductions"
	"ecrpq/internal/rex"
)

func main() {
	a, err := ecrpq.NewAlphabet("a", "b")
	if err != nil {
		log.Fatal(err)
	}
	exprs := []string{"a*b", "(a|b)*b", "(ab|b)*"}
	in := &reductions.INEInstance{Alphabet: a}
	for _, e := range exprs {
		nfa, err := rex.CompileString(a, e)
		if err != nil {
			log.Fatal(err)
		}
		in.Automata = append(in.Automata, nfa)
	}

	// Direct decision by automaton products.
	w, ok := in.Solve()
	fmt.Printf("intersection of %v non-empty (direct product): %v\n", exprs, ok)
	if ok {
		fmt.Println("  shortest common word:", w.Format(a))
	}

	// Route 1 — Lemma 5.1 case 1: one big relation component. The query has
	// cc_vertex = number of regexes, placing it in the PSPACE regime of
	// Theorem 3.2(1).
	db1, q1, err := reductions.BigHyperedge(in)
	if err != nil {
		log.Fatal(err)
	}
	res1, err := core.Evaluate(db1, q1, core.Options{Strategy: core.Generic})
	if err != nil {
		log.Fatal(err)
	}
	m1 := ecrpq.QueryMeasures(q1)
	fmt.Printf("via ECRPQ (big component, cc_vertex=%d): %v\n", m1.CCVertex, res1.Sat)
	if res1.Sat {
		lbl := res1.Paths["pi1"].Label()
		fmt.Println("  witness path label (= $·w·#·$):", lbl.Format(db1.Alphabet()))
	}

	// Route 2 — Lemma 5.1 case 2: one path variable shared by many unary
	// atoms (cc_hedge = number of regexes).
	db2, q2, err := reductions.SharedVariable(in)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := core.Evaluate(db2, q2, core.Options{Strategy: core.Generic})
	if err != nil {
		log.Fatal(err)
	}
	m2 := ecrpq.QueryMeasures(q2)
	fmt.Printf("via ECRPQ (shared variable, cc_hedge=%d): %v\n", m2.CCHedge, res2.Sat)
	if res2.Sat {
		fmt.Println("  witness word:", res2.Paths["pi"].Label().Format(a))
	}

	if res1.Sat != ok || res2.Sat != ok {
		log.Fatal("encodings disagree with the direct decision — reduction bug")
	}
	fmt.Println("all three routes agree, as Claim 5.1 requires")
}
