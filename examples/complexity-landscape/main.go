// Complexity landscape: the paper's characterization in action. For one
// query from each regime family, this example computes the structural
// measures (cc_vertex, cc_hedge, treewidth of G^node), prints the regimes
// Theorems 3.1 and 3.2 predict for families bounded by those measures, and
// shows which evaluation strategy the Auto dispatcher picks.
//
// Run with:  go run ./examples/complexity-landscape
package main

import (
	"fmt"
	"log"

	"ecrpq"
	"ecrpq/internal/workload"
)

func main() {
	a, err := ecrpq.NewAlphabet("a", "b")
	if err != nil {
		log.Fatal(err)
	}
	db := workload.CycleDB(a, 8)

	families := []struct {
		name         string
		unbounded    string // which measure grows along the family
		q            *ecrpq.Query
		ccv, cch, tw bool // bounded along the family?
	}{
		{"pair-chain (k=4)", "none — all measures bounded",
			workload.PairChainQuery(a, 4), true, true, true},
		{"clique (k=4)", "treewidth (k−1)",
			workload.CliqueQuery(a, 4), true, true, false},
		{"fan (k=4)", "cc_vertex (one k-ary component)",
			workload.FanQuery(a, 4), false, true, true},
		{"eq-chain (k=4)", "cc_vertex and cc_hedge (chained binary atoms)",
			workload.EqChainQuery(a, 4), false, false, true},
	}

	for _, f := range families {
		m := ecrpq.QueryMeasures(f.q)
		ec, pc := ecrpq.Classify(f.ccv, f.cch, f.tw)
		res, err := ecrpq.Evaluate(db, f.q, ecrpq.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s measures: cc_vertex=%d cc_hedge=%d tw=%d\n",
			f.name, m.CCVertex, m.CCHedge, m.TreewidthUpper)
		fmt.Printf("%-18s unbounded along the family: %s\n", "", f.unbounded)
		fmt.Printf("%-18s Thm 3.2 (eval): %s   Thm 3.1 (p-eval): %s\n", "", ec, pc)
		fmt.Printf("%-18s auto strategy picked: %s; satisfiable on the 8-cycle: %v\n\n",
			"", res.Stats.StrategyUsed, res.Sat)
	}
}
