// Near-duplicate detection with edit distance: two document-revision graphs
// where edges are edit operations; an ECRPQ with the edit-distance relation
// finds revision histories whose operation logs are almost identical — the
// inter-path-dependency use case motivating ECRPQ in the paper's
// introduction (it even cites "edit-distance at most 14" as an example
// relation).
//
// Run with:  go run ./examples/plagiarism
package main

import (
	"fmt"
	"log"

	"ecrpq"
)

func main() {
	// Revision graphs of two documents. Labels: i = insert paragraph,
	// d = delete paragraph, r = reword.
	db, err := ecrpq.ParseDB(`
alphabet i d r
docA_v0 i docA_v1
docA_v1 r docA_v2
docA_v2 i docA_v3
docA_v3 d docA_final
docB_v0 i docB_v1
docB_v1 r docB_v2
docB_v2 r docB_v3
docB_v3 d docB_final
`)
	if err != nil {
		log.Fatal(err)
	}

	a := db.Alphabet()
	ed, err := ecrpq.EditDistanceAtMost(a, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Are there full revision histories of the two documents whose edit logs
	// differ by at most one operation? The language constraints pin each
	// history to its document's signature opening (A reworks then inserts, B
	// reworks twice), so the relation really compares different paths.
	q, err := ecrpq.NewQuery(a).
		Reach("a0", "histA", "aF").
		Reach("b0", "histB", "bF").
		Rel(ed, "histA", "histB").
		Lang("histA", "iri(i|d|r)*d").
		Lang("histB", "irr(i|d|r)*d").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	res, err := ecrpq.Evaluate(db, q, ecrpq.Options{Strategy: ecrpq.Generic})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("suspiciously similar histories (edit distance ≤ 1):", res.Sat)
	if res.Sat {
		if err := ecrpq.VerifyWitness(db, q, res); err != nil {
			log.Fatal(err)
		}
		fmt.Println("  history A:", res.Paths["histA"].Format(db))
		fmt.Println("    ops:", res.Paths["histA"].Label().Format(a))
		fmt.Println("  history B:", res.Paths["histB"].Format(db))
		fmt.Println("    ops:", res.Paths["histB"].Label().Format(a))
	}

	// Tighten to exact equality: the two opening signatures differ (iri vs
	// irr), so no pair of histories can be identical.
	qEq, err := ecrpq.NewQuery(a).
		Reach("a0", "histA", "aF").
		Reach("b0", "histB", "bF").
		Rel(ecrpq.Equality(a, 2), "histA", "histB").
		Lang("histA", "iri(i|d|r)*d").
		Lang("histB", "irr(i|d|r)*d").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	resEq, err := ecrpq.Evaluate(db, qEq, ecrpq.Options{Strategy: ecrpq.Generic})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("identical histories:", resEq.Sat, "(expected false: the logs must differ)")
}
