// The relation-class hierarchy Recognizable ⊊ Synchronous ⊊ Rational from
// the paper's introduction, made concrete:
//
//   - a recognizable relation (a product of languages) converts losslessly
//     into ECRPQ form, and CRPQ+Recognizable collapses to a union of CRPQs;
//   - a synchronous relation (equal length) is evaluated exactly and always
//     terminates — the paper's sweet spot;
//   - a rational relation (suffix) escapes the synchronous class: evaluation
//     of CRPQ+Rational is undecidable, and all this library can offer is a
//     sound-but-incomplete bounded search, demonstrated on a Post
//     Correspondence Problem encoding.
//
// Run with:  go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"ecrpq"
	"ecrpq/internal/alphabet"
	"ecrpq/internal/automata"
	"ecrpq/internal/core"
	"ecrpq/internal/query"
	"ecrpq/internal/rational"
	"ecrpq/internal/recog"
	"ecrpq/internal/rex"
)

func main() {
	a, err := ecrpq.NewAlphabet("a", "b")
	if err != nil {
		log.Fatal(err)
	}
	db, err := ecrpq.ParseDB(`
alphabet a b
u a v
v a w
u b m
m b w
`)
	if err != nil {
		log.Fatal(err)
	}

	// --- Level 1: recognizable (weakest). R = a⁺ × b⁺.
	rec, err := recog.New(a, 2, recog.Term{Langs: []*automata.NFA[alphabet.Symbol]{
		rex.MustCompileString(a, "a+"), rex.MustCompileString(a, "b+"),
	}})
	if err != nil {
		log.Fatal(err)
	}
	base := query.NewBuilder(a).
		Reach("x", "p1", "y").
		Reach("x", "p2", "y").
		Lang("p1", "(a|b)*").
		Lang("p2", "(a|b)*").
		MustBuild()
	u, err := recog.ToUCRPQ(base, []recog.Atom{{Rel: rec, Paths: []string{"p1", "p2"}}})
	if err != nil {
		log.Fatal(err)
	}
	res1, err := core.EvaluateUnion(db, u, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recognizable a⁺×b⁺ as a UCRPQ:", len(u.Disjuncts), "disjunct(s); satisfiable:", res1.Sat)

	// --- Level 2: synchronous (the paper's class). eq-len needs lock-step
	// tape access: no recognizable relation can express it, but ECRPQ
	// evaluates it exactly.
	q2, err := ecrpq.ParseQuery(`
alphabet a b
x -[$p1]-> y
x -[$p2]-> y
rel eqlen(p1, p2)
lang p1 a+
lang p2 b+
`)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := ecrpq.Evaluate(db, q2, ecrpq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synchronous eq-len between a⁺ and b⁺ paths:", res2.Sat,
		"(exact, always terminates — Thm 3.2 applies)")

	// --- Level 3: rational (too strong). Suffix is rational but not
	// synchronous; with transducer relations only a bounded search remains.
	rq := &rational.RationalQuery{
		Reach: []rational.ReachAtom{
			{Src: "x1", Dst: "y1", Path: "s1"},
			{Src: "x2", Dst: "y2", Path: "s2"},
		},
		Atoms: []rational.RationalAtom{{Rel: rational.SuffixOf(a), Path1: "s1", Path2: "s2"}},
	}
	_, ok, err := rational.BoundedEval(db, rq, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rational suffix relation, bounded search (≤3 edges):", ok,
		"(sound but incomplete — evaluation is undecidable in general)")

	// The undecidability source, concretely: PCP reduces to CRPQ+Rational.
	w := func(s string) alphabet.Word { return alphabet.MustParseWord(a, s) }
	pcp := &rational.PCPInstance{
		Alphabet: a,
		X:        []alphabet.Word{w("ab"), w("b")},
		Y:        []alphabet.Word{w("a"), w("bb")},
	}
	pdb, pq, err := pcp.ToCRPQRational()
	if err != nil {
		log.Fatal(err)
	}
	_, solvable, err := rational.BoundedEval(pdb, pq, 3)
	if err != nil {
		log.Fatal(err)
	}
	seq, _ := pcp.SolveBounded(4)
	fmt.Printf("PCP instance as CRPQ+Rational: bounded evaluation says %v (solution indices %v)\n",
		solvable, seq)
	fmt.Println("— no bound works for every instance: that failure mode is exactly why ECRPQ stops at synchronous relations")
}
