package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ecrpq/internal/client"
)

// buildDaemon compiles the ecrpqd binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ecrpqd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building ecrpqd: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port by listening and immediately closing.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches the binary and waits until it answers /healthz.
func startDaemon(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	c := client.New(client.Config{BaseURL: "http://" + addr, MaxRetries: 20, BaseDelay: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := c.Health(ctx); err != nil {
		_ = cmd.Process.Kill()
		t.Fatalf("daemon never became healthy: %v", err)
	}
	return cmd
}

func dbText(n int) string {
	var sb strings.Builder
	sb.WriteString("alphabet a b\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "v%d a v%d\n", i, (i+1)%n)
	}
	return sb.String()
}

const testQuery = "alphabet a b\nx -[a]-> y\n"

// TestKillAndRestart is the end-to-end crash-safety acceptance test:
// register three databases, SIGKILL the daemon mid-workload, restart it on
// the same data directory, and require all three to answer queries with
// their pre-crash generations.
func TestKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildDaemon(t)
	addr := freeAddr(t)
	dataDir := t.TempDir()

	daemon := startDaemon(t, bin, addr, dataDir)
	c := client.New(client.Config{BaseURL: "http://" + addr})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	names := []string{"alpha", "beta", "hot"}
	gens := make(map[string]uint64)
	for i, name := range names {
		res, err := c.RegisterDB(ctx, name, dbText(8+i))
		if err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
		gens[name] = res.Generation
	}

	// Background workload on "hot" so the kill lands mid-traffic. Errors
	// are expected once the process dies; the workload only generates load.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := client.New(client.Config{BaseURL: "http://" + addr, MaxRetries: 0, BreakerThreshold: -1})
		for {
			select {
			case <-stop:
				return
			default:
				qctx, qcancel := context.WithTimeout(context.Background(), time.Second)
				_, _ = w.Query(qctx, client.QueryRequest{DB: "hot", Query: testQuery})
				qcancel()
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)

	// kill -9: no drain, no cleanup — the journal and snapshots must
	// already be durable.
	if err := daemon.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_ = daemon.Wait()
	close(stop)
	wg.Wait()

	daemon2 := startDaemon(t, bin, addr, dataDir)
	defer func() {
		_ = daemon2.Process.Kill()
		_, _ = daemon2.Process.Wait()
	}()

	infos, err := c.ListDBs(ctx)
	if err != nil {
		t.Fatalf("listing after restart: %v", err)
	}
	if len(infos) != len(names) {
		t.Fatalf("restart lists %d databases, want %d: %+v", len(infos), len(names), infos)
	}
	listed := make(map[string]uint64, len(infos))
	for _, d := range infos {
		listed[d.Name] = d.Generation
	}
	var maxPreCrash uint64
	for name, gen := range gens {
		if listed[name] != gen {
			t.Errorf("%s restored with generation %d, want pre-crash %d", name, listed[name], gen)
		}
		if gen > maxPreCrash {
			maxPreCrash = gen
		}
		resp, err := c.Query(ctx, client.QueryRequest{DB: name, Query: testQuery})
		if err != nil {
			t.Errorf("query %s after restart: %v", name, err)
		} else if !resp.Sat {
			t.Errorf("query %s after restart: sat=false", name)
		}
	}

	// Generation monotonicity across the crash.
	res, err := c.RegisterDB(ctx, "post", dbText(5))
	if err != nil {
		t.Fatalf("register after restart: %v", err)
	}
	if res.Generation <= maxPreCrash {
		t.Errorf("post-restart generation %d not greater than pre-crash max %d",
			res.Generation, maxPreCrash)
	}

	// The -check probe agrees the daemon is healthy.
	out, err := exec.Command(bin, "-addr", addr, "-check").CombinedOutput()
	if err != nil {
		t.Fatalf("-check failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ok:") {
		t.Errorf("-check output %q does not report ok", out)
	}
}

// TestCheckAgainstDeadAddr: -check must exit non-zero when nothing is
// listening.
func TestCheckAgainstDeadAddr(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildDaemon(t)
	addr := freeAddr(t) // reserved then released: nothing listens here
	cmd := exec.Command(bin, "-addr", addr, "-check")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("-check succeeded against a dead address\n%s", out)
	}
}
