// Command ecrpqd is the resident ECRPQ query server: it holds named graph
// databases in memory, caches compiled query plans and Lemma 4.3
// materializations across requests, bounds concurrent evaluation with a
// worker pool, and enforces per-request deadlines that cancel evaluation
// work in flight.
//
// Usage:
//
//	ecrpqd [-addr :8377] [-workers N] [-queue N] [-timeout 30s]
//	       [-max-timeout 5m] [-cache-budget 268435456] [-db name=file ...]
//
// Endpoints (see internal/server):
//
//	POST   /v1/dbs/{name}   register or replace a database (body: graphdb text)
//	DELETE /v1/dbs/{name}   drop a database
//	GET    /v1/dbs          list databases
//	POST   /v1/query        evaluate a query ({"db","query","strategy","timeout_ms"})
//	POST   /v1/measures     structural measures of a query
//	GET    /healthz         liveness / drain state
//	GET    /debug/vars      expvar metrics including the "ecrpqd" registry
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains in-flight
// queries, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ecrpq/internal/graphdb"
	"ecrpq/internal/server"
)

// dbFlags collects repeated -db name=file arguments.
type dbFlags []string

func (d *dbFlags) String() string     { return strings.Join(*d, ",") }
func (d *dbFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	workers := flag.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth beyond busy workers")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query timeout")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "upper bound on requested timeouts")
	cacheBudget := flag.Int64("cache-budget", 0, "plan cache byte budget (0 = default 256 MiB)")
	maxStates := flag.Int("max-product-states", 0, "cap on product-search states per component (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight queries")
	var dbs dbFlags
	flag.Var(&dbs, "db", "preload a database as name=file (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "ecrpqd ", log.LstdFlags|log.LUTC)
	if err := run(*addr, server.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		CacheBudgetBytes: *cacheBudget,
		MaxProductStates: *maxStates,
		Logger:           logger,
	}, dbs, *drainTimeout, logger); err != nil {
		fmt.Fprintln(os.Stderr, "ecrpqd:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg server.Config, dbs []string, drainTimeout time.Duration, logger *log.Logger) error {
	srv := server.New(cfg)
	srv.Metrics().Publish("ecrpqd")

	for _, spec := range dbs {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-db wants name=file, got %q", spec)
		}
		if err := preload(srv, name, file); err != nil {
			return fmt.Errorf("preloading %s: %w", spec, err)
		}
		logger.Printf("event=preload name=%s file=%s", name, file)
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("event=listen addr=%s", addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Printf("event=signal sig=%s", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("event=http_shutdown err=%q", err)
	}
	return srv.Shutdown(ctx)
}

// preload registers a database file before the listener starts.
func preload(srv *server.Server, name, file string) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := graphdb.Parse(f)
	if err != nil {
		return err
	}
	return srv.RegisterDB(name, db)
}
