// Command ecrpqd is the resident ECRPQ query server: it holds named graph
// databases in memory, caches compiled query plans and Lemma 4.3
// materializations across requests, bounds concurrent evaluation with a
// worker pool, and enforces per-request deadlines that cancel evaluation
// work in flight.
//
// Usage:
//
//	ecrpqd [-addr :8377] [-workers N] [-queue N] [-timeout 30s]
//	       [-max-timeout 5m] [-cache-budget 268435456] [-db name=file ...]
//	       [-data-dir DIR] [-check] [-slow-query 0] [-trace-sample 1]
//	       [-debug-addr ""] [-mem-budget 0] [-quota 0] [-quota-burst 0]
//	       [-shed] [-shed-wait 250ms] [-shed-mem 0.9] [-degraded]
//	       [-enumerate-limit 100] [-enumerate-max-limit 1000]
//	       [-node-id ID -peers id=url,...] [-replicas 2]
//	       [-probe-interval 1s] [-catchup-interval 2s]
//	       [-scrub-interval 0] [-scrub-pace 8388608] [-anti-entropy-interval 0]
//
// Cluster mode: with -node-id and -peers (a comma-separated id=url list
// naming every node, including this one), the daemon joins a static
// multi-node cluster. Database names are placed on a consistent-hash
// ring: writes (register/drop) are routed to the owning node with a 307
// redirect, committed registrations are replicated to -replicas holders
// by shipping journal records over POST /v1/replicate (with pull-based
// catch-up repairing any missed pushes), and reads are answered locally
// by any holder or forwarded to one — failing over between replicas
// when the preferred node is down (per-peer /readyz probes plus passive
// failure marking). Replicated generations equal the owner's, so the
// /v1/enumerate staleness contract (410 STALE_CURSOR) holds across
// nodes. GET /v1/cluster reports placement and peer health.
//
// Streaming enumeration: POST /v1/enumerate evaluates lazily and returns
// one page of answers plus an opaque cursor for the next page; pages are
// produced without materializing sweep tables, so the first answers
// arrive in far less time and memory than a full /v1/query.
// -enumerate-limit is the page size when a request names none, and
// -enumerate-max-limit caps what a request may ask for.
//
// Resource governance: -mem-budget caps the bytes held by live
// evaluations plus the plan cache (one shared ledger; -1 sizes it from
// /proc/meminfo); over-budget queries fail fast with a structured 429
// RESOURCE_EXHAUSTED (or, with -degraded, a satisfiability-only answer)
// instead of OOM-killing the daemon. -quota rate-limits each client (the
// X-Ecrpq-Client header) with per-client token buckets, and -shed rejects
// low-priority work (X-Ecrpq-Priority: low) while queue-wait p99 or
// reserved memory is past its threshold.
//
// Observability: every sampled request (-trace-sample, default: all) is
// traced through the evaluation pipeline; recent traces are served at
// /debug/trace/recent (JSON) and /debug/trace/chrome (chrome://tracing
// format). With -slow-query D, any request slower than D logs a
// slow_query line with its plan snapshot and per-stage breakdown. With
// -debug-addr, net/http/pprof is served on a separate listener — never
// on the query port, so profiling endpoints are not exposed to query
// clients.
//
// With -data-dir the registry is crash-safe: every register/replace/drop
// is made durable (checksummed snapshot + journal record, fsynced) before
// it is acknowledged, and on startup the journal is replayed so databases
// survive a kill -9 with their generations intact.
//
// End-to-end integrity: every registration carries an order-independent
// content digest, persisted beside the snapshot and verified by replicas
// before a shipped record installs. With -scrub-interval a background
// scrub re-verifies in-memory digests, on-disk snapshot checksums
// (reads paced by -scrub-pace and charged to the memory ledger), and
// the journal tail; corruption is repaired from whichever copy still
// verifies, and a database with no good copy is quarantined — reads
// answer a typed 503 CORRUPT_LOCAL (failing over to healthy holders in
// cluster mode) instead of serving wrong answers or crashing. With
// -anti-entropy-interval each holder periodically compares its
// (generation, digest) pair against the ring owner's via GET
// /v1/integrity/{db} and re-fetches on divergence.
//
// With -check the binary acts as a health probe instead of a server: it
// asks a running daemon at -addr for /healthz and /v1/dbs via the
// retrying client and exits 0 (healthy) or 1.
//
// Endpoints (see internal/server):
//
//	POST   /v1/dbs/{name}   register or replace a database (body: graphdb text)
//	DELETE /v1/dbs/{name}   drop a database
//	GET    /v1/dbs          list databases
//	POST   /v1/query        evaluate a query ({"db","query","strategy","timeout_ms"})
//	POST   /v1/enumerate    stream one page of answers with a resumable cursor
//	POST   /v1/measures     structural measures of a query
//	GET    /healthz         liveness / drain state
//	GET    /debug/vars      expvar metrics including the "ecrpqd" registry
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains in-flight
// queries, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ecrpq/internal/client"
	"ecrpq/internal/cluster"
	"ecrpq/internal/graphdb"
	"ecrpq/internal/persist"
	"ecrpq/internal/server"
)

// clusterFlags carries the cluster-mode command line into run. Empty
// NodeID (the default) means single-node operation.
type clusterFlags struct {
	NodeID          string
	Peers           string
	Replicas        int
	ProbeInterval   time.Duration
	CatchupInterval time.Duration
}

// dbFlags collects repeated -db name=file arguments.
type dbFlags []string

func (d *dbFlags) String() string     { return strings.Join(*d, ",") }
func (d *dbFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	workers := flag.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth beyond busy workers")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query timeout")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "upper bound on requested timeouts")
	cacheBudget := flag.Int64("cache-budget", 0, "plan cache byte budget (0 = default 256 MiB)")
	maxStates := flag.Int("max-product-states", 0, "cap on product-search states per component (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight queries")
	dataDir := flag.String("data-dir", "", "directory for crash-safe registry persistence (empty = in-memory only)")
	check := flag.Bool("check", false, "probe a running daemon at -addr and exit 0/1 instead of serving")
	slowQuery := flag.Duration("slow-query", 0, "log plan snapshot + per-stage breakdown for requests slower than this (0 = off)")
	traceSample := flag.Int("trace-sample", 1, "trace one request in N (1 = all, negative = disable tracing)")
	traceRing := flag.Int("trace-ring", 0, "recent-trace ring buffer size (0 = default 64)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
	memBudget := flag.Int64("mem-budget", 0, "evaluation+cache memory budget in bytes (0 = unlimited, -1 = half of MemAvailable)")
	quota := flag.Float64("quota", 0, "per-client sustained queries/second (X-Ecrpq-Client header; 0 = off)")
	quotaBurst := flag.Float64("quota-burst", 0, "per-client burst capacity (0 = max(2*quota, 1))")
	shed := flag.Bool("shed", false, "shed low-priority work when queue wait or reserved memory crosses its threshold")
	shedWait := flag.Duration("shed-wait", 0, "queue-wait p99 that triggers shedding (0 = default 250ms)")
	shedMem := flag.Float64("shed-mem", 0, "reserved/budget fraction that triggers shedding (0 = default 0.9)")
	degraded := flag.Bool("degraded", false, "answer memory-denied queries with a satisfiability-only degraded result")
	enumLimit := flag.Int("enumerate-limit", 0, "default /v1/enumerate page size (0 = 100)")
	enumMaxLimit := flag.Int("enumerate-max-limit", 0, "largest /v1/enumerate page a request may ask for (0 = 1000)")
	nodeID := flag.String("node-id", "", "this node's id in -peers (empty = single-node mode)")
	peers := flag.String("peers", "", "static cluster membership as id=url,id=url,... (must include -node-id)")
	replicas := flag.Int("replicas", 0, "copies kept of each database, owner included (0 = default 2)")
	probeInterval := flag.Duration("probe-interval", 0, "peer health probe period (0 = default 1s)")
	catchupInterval := flag.Duration("catchup-interval", 0, "replication catch-up pull period (0 = default 2s)")
	scrubInterval := flag.Duration("scrub-interval", 0, "background integrity scrub period (0 = disabled)")
	scrubPace := flag.Int64("scrub-pace", 0, "scrub disk read pacing in bytes/second (0 = default 8 MiB/s)")
	antiEntropyInterval := flag.Duration("anti-entropy-interval", 0, "cross-holder digest comparison period in cluster mode (0 = disabled)")
	var dbs dbFlags
	flag.Var(&dbs, "db", "preload a database as name=file (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "ecrpqd ", log.LstdFlags|log.LUTC)
	if *check {
		if err := runCheck(*addr); err != nil {
			fmt.Fprintln(os.Stderr, "ecrpqd: check:", err)
			os.Exit(1)
		}
		return
	}
	budget := *memBudget
	if budget < 0 {
		budget = autoMemBudget()
		logger.Printf("event=mem_budget_auto bytes=%d", budget)
	}
	if err := run(*addr, server.Config{
		Workers:               *workers,
		QueueDepth:            *queue,
		DefaultTimeout:        *timeout,
		MaxTimeout:            *maxTimeout,
		CacheBudgetBytes:      *cacheBudget,
		MaxProductStates:      *maxStates,
		Logger:                logger,
		TraceSampleEvery:      *traceSample,
		TraceRingSize:         *traceRing,
		SlowQueryThreshold:    *slowQuery,
		MemBudgetBytes:        budget,
		QuotaRPS:              *quota,
		QuotaBurst:            *quotaBurst,
		ShedEnabled:           *shed,
		ShedQueueWait:         *shedWait,
		ShedMemFraction:       *shedMem,
		DegradedFallback:      *degraded,
		EnumerateDefaultLimit: *enumLimit,
		EnumerateMaxLimit:     *enumMaxLimit,
		ScrubInterval:         *scrubInterval,
		ScrubPaceBytes:        *scrubPace,
		AntiEntropyInterval:   *antiEntropyInterval,
	}, dbs, *dataDir, *drainTimeout, *debugAddr, clusterFlags{
		NodeID:          *nodeID,
		Peers:           *peers,
		Replicas:        *replicas,
		ProbeInterval:   *probeInterval,
		CatchupInterval: *catchupInterval,
	}, logger); err != nil {
		fmt.Fprintln(os.Stderr, "ecrpqd:", err)
		os.Exit(1)
	}
}

// autoMemBudget derives a budget from /proc/meminfo's MemAvailable: half
// of what the kernel reports as reclaimable-without-swapping, leaving the
// rest for the Go runtime, the OS page cache, and neighbours. Falls back
// to 1 GiB when the file is unreadable (non-Linux or restricted).
func autoMemBudget() int64 {
	const fallback = 1 << 30
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return fallback
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "MemAvailable:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		var kb int64
		if _, err := fmt.Sscan(fields[1], &kb); err != nil {
			break
		}
		return kb * 1024 / 2
	}
	return fallback
}

// probeURL turns a listen address into a client base URL: ":8377" and
// "0.0.0.0:8377" mean loopback from the probe's point of view.
func probeURL(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	if host, port, ok := strings.Cut(addr, ":"); ok && (host == "0.0.0.0" || host == "[::]") {
		return "http://127.0.0.1:" + port
	}
	return "http://" + addr
}

// runCheck is the -check health probe: healthy means /healthz answers ok
// (retried with backoff, so a daemon mid-restart gets a grace period) and
// the database list is readable.
func runCheck(addr string) error {
	c := client.New(client.Config{
		BaseURL:     probeURL(addr),
		MaxRetries:  3,
		BaseDelay:   200 * time.Millisecond,
		RetryBudget: 5 * time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	h, err := c.Health(ctx)
	if err != nil {
		return err
	}
	if h.Status != "ok" {
		return fmt.Errorf("daemon status is %q", h.Status)
	}
	if _, err := c.ListDBs(ctx); err != nil {
		return fmt.Errorf("listing databases: %w", err)
	}
	fmt.Printf("ok: %d database(s), up %.0fs\n", h.Databases, h.UptimeSeconds)
	return nil
}

func run(addr string, cfg server.Config, dbs []string, dataDir string, drainTimeout time.Duration, debugAddr string, cf clusterFlags, logger *log.Logger) error {
	srv := server.New(cfg)
	srv.Metrics().Publish("ecrpqd")

	if debugAddr != "" {
		// pprof lives on its own listener, never on the query port: the
		// profiling endpoints expose heap contents and can stall the
		// process, so they must not be reachable by query clients.
		dbg := &http.Server{
			Addr:              debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Printf("event=debug_listen addr=%s", debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("event=debug_listen_failed err=%q", err)
			}
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = dbg.Shutdown(ctx)
		}()
	}

	if dataDir != "" {
		st, err := persist.Open(dataDir)
		if err != nil {
			return fmt.Errorf("opening data dir %s: %w", dataDir, err)
		}
		defer st.Close()
		restored, err := srv.AttachStore(st)
		if err != nil {
			return fmt.Errorf("attaching store: %w", err)
		}
		logger.Printf("event=persist_open dir=%s restored=%d max_gen=%d warnings=%d",
			dataDir, restored, st.MaxGen(), len(st.Warnings()))
	}

	// Cluster attach comes after the store (restored databases replicate
	// via catch-up) and before preloads (a -db preload of a name this node
	// does not own is a placement mistake and should fail loudly).
	if cf.NodeID != "" || cf.Peers != "" {
		if cf.NodeID == "" || cf.Peers == "" {
			return fmt.Errorf("cluster mode needs both -node-id and -peers")
		}
		ps, err := cluster.ParsePeers(cf.Peers)
		if err != nil {
			return fmt.Errorf("parsing -peers: %w", err)
		}
		c, err := cluster.New(cluster.Config{
			NodeID:            cf.NodeID,
			Peers:             ps,
			ReplicationFactor: cf.Replicas,
			ProbeInterval:     cf.ProbeInterval,
			CatchupInterval:   cf.CatchupInterval,
			Logger:            logger,
		})
		if err != nil {
			return fmt.Errorf("building cluster: %w", err)
		}
		if err := srv.AttachCluster(c); err != nil {
			return fmt.Errorf("attaching cluster: %w", err)
		}
		logger.Printf("event=cluster_join node=%s peers=%d replicas=%d", cf.NodeID, len(ps), c.ReplicationFactor())
	}

	for _, spec := range dbs {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-db wants name=file, got %q", spec)
		}
		if err := preload(srv, name, file); err != nil {
			return fmt.Errorf("preloading %s: %w", spec, err)
		}
		logger.Printf("event=preload name=%s file=%s", name, file)
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("event=listen addr=%s", addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Printf("event=signal sig=%s", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("event=http_shutdown err=%q", err)
	}
	return srv.Shutdown(ctx)
}

// debugMux builds the pprof-only mux for the -debug-addr listener.
// Handlers are registered explicitly instead of importing net/http/pprof
// for its DefaultServeMux side effect, so the query mux can never grow
// profiling routes by accident.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// preload registers a database file before the listener starts.
func preload(srv *server.Server, name, file string) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := graphdb.Parse(f)
	if err != nil {
		return err
	}
	return srv.RegisterDB(name, db)
}
