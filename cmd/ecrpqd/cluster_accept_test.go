package main

// Multi-process cluster acceptance (EXPERIMENTS.md A11): three real
// ecrpqd processes form a cluster, a registered database replicates to
// every holder, aggregate read throughput across the three nodes beats
// a single node by ≥2× on the same workload, and a kill -9 of the
// owning process leaves reads flowing from the surviving replicas, with
// the survivors marking the dead peer down within a few probe periods.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecrpq/internal/client"
)

// Free-variable reachability over (a|b)*: every request does real
// evaluation work on the pool (free-variable answers are computed per
// request, only the compiled plan is cached), so throughput is bounded
// by the -workers 1 evaluation slot on each node — exactly what the
// scaling assertion needs to measure.
const acceptQuery = "alphabet a b\nfree x y\nx -[(a|b)*]-> y\n"

// startClusterNode launches one daemon with the cluster flags and waits
// for liveness. Probe and catch-up intervals are short so failure
// detection and replication repair land within test deadlines.
func startClusterNode(t *testing.T, bin, addr, nodeID, peers string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-node-id", nodeID,
		"-peers", peers,
		"-replicas", "3",
		"-probe-interval", "150ms",
		"-catchup-interval", "300ms",
		"-workers", "1",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting node %s: %v", nodeID, err)
	}
	c := client.New(client.Config{BaseURL: "http://" + addr, MaxRetries: 20, BaseDelay: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := c.Health(ctx); err != nil {
		_ = cmd.Process.Kill()
		t.Fatalf("node %s never became healthy: %v", nodeID, err)
	}
	return cmd
}

// clusterStatus decodes GET /v1/cluster from one node.
type clusterStatus struct {
	NodeID string `json:"node_id"`
	Peers  []struct {
		ID      string `json:"id"`
		Healthy bool   `json:"healthy"`
	} `json:"peers"`
	Databases []struct {
		Name       string   `json:"name"`
		Generation uint64   `json:"generation"`
		Owner      string   `json:"owner"`
		Holders    []string `json:"holders"`
	} `json:"databases"`
}

func getClusterStatus(t *testing.T, addr string) (clusterStatus, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", "http://"+addr+"/v1/cluster", nil)
	if err != nil {
		return clusterStatus{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return clusterStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return clusterStatus{}, fmt.Errorf("GET /v1/cluster: %s", resp.Status)
	}
	var st clusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return clusterStatus{}, err
	}
	return st, nil
}

// readLoad runs `concurrency` query loops for `dur`, each goroutine
// pinned to one of `addrs` round-robin, and returns the number of
// successful reads. Failures are counted and reported by the caller.
func readLoad(t *testing.T, addrs []string, concurrency int, dur time.Duration) (ok, failed int64) {
	t.Helper()
	var okN, failN atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < concurrency; i++ {
		addr := addrs[i%len(addrs)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := client.New(client.Config{BaseURL: "http://" + addr, MaxRetries: 0, BreakerThreshold: -1})
			for {
				select {
				case <-stop:
					return
				default:
				}
				qctx, qcancel := context.WithTimeout(context.Background(), 5*time.Second)
				resp, err := w.Query(qctx, client.QueryRequest{DB: "accept", Query: acceptQuery})
				qcancel()
				if err != nil || !resp.Sat {
					failN.Add(1)
					continue
				}
				okN.Add(1)
			}
		}()
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	return okN.Load(), failN.Load()
}

// TestClusterThroughputAndFailover is the multi-node acceptance run.
func TestClusterThroughputAndFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildDaemon(t)
	addrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	ids := []string{"n1", "n2", "n3"}
	var specs []string
	for i, id := range ids {
		specs = append(specs, id+"=http://"+addrs[i])
	}
	peers := strings.Join(specs, ",")

	procs := make(map[string]*exec.Cmd, 3)
	for i, id := range ids {
		procs[id] = startClusterNode(t, bin, addrs[i], id, peers)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.Process != nil {
				_ = p.Process.Kill()
				_, _ = p.Process.Wait()
			}
		}
	})

	// Register through node 1 — the 307 write redirect (if n1 is not the
	// owner) is followed transparently by the HTTP client.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c0 := client.New(client.Config{BaseURL: "http://" + addrs[0]})
	// A 12-vertex ring makes the free-variable closure query cost ~15ms
	// of evaluation — two orders of magnitude above the HTTP overhead, so
	// throughput tracks the per-node evaluation slot, not the transport.
	res, err := c0.RegisterDB(ctx, "accept", dbText(12))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	gen := res.Generation

	// Wait until every node holds the database at the minted generation
	// (replication factor 3 = all nodes).
	deadline := time.Now().Add(15 * time.Second)
	for {
		held := 0
		for _, addr := range addrs {
			cl := client.New(client.Config{BaseURL: "http://" + addr, MaxRetries: 0})
			infos, err := cl.ListDBs(ctx)
			if err != nil {
				continue
			}
			for _, d := range infos {
				if d.Name == "accept" && d.Generation == gen {
					held++
				}
			}
		}
		if held == len(addrs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("database replicated to %d/%d nodes within the deadline", held, len(addrs))
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Warm every node's plan cache so neither phase pays first-compile.
	for _, addr := range addrs {
		w := client.New(client.Config{BaseURL: "http://" + addr})
		for i := 0; i < 3; i++ {
			if _, err := w.Query(ctx, client.QueryRequest{DB: "accept", Query: acceptQuery}); err != nil {
				t.Fatalf("warmup on %s: %v", addr, err)
			}
		}
	}

	// Phase A: all load on one node. Phase B: the same load spread over
	// all three. Each node evaluates with one worker, so the aggregate
	// should scale with the node count; ≥2× is the acceptance bar.
	const concurrency = 6
	const phase = 1500 * time.Millisecond
	singleOK, singleFail := readLoad(t, addrs[:1], concurrency, phase)
	if singleOK == 0 {
		t.Fatalf("single-node phase made no progress (%d failures)", singleFail)
	}
	tripleOK, tripleFail := readLoad(t, addrs, concurrency, phase)
	if singleFail != 0 || tripleFail != 0 {
		t.Errorf("read failures during throughput phases: single=%d triple=%d", singleFail, tripleFail)
	}
	t.Logf("throughput: single-node=%d, three-node=%d (%.2fx) over %v", singleOK, tripleOK, float64(tripleOK)/float64(singleOK), phase)
	// The scaling bar needs one core per daemon: on a starved host the
	// three processes time-share one CPU and no architecture could beat
	// 1x. The functional assertions below still run everywhere.
	if runtime.NumCPU() >= 3 {
		if tripleOK < 2*singleOK {
			t.Errorf("three-node throughput %d < 2x single-node %d", tripleOK, singleOK)
		}
	} else {
		t.Logf("skipping the 2x scaling assertion: only %d CPU(s) for 3 daemons", runtime.NumCPU())
	}

	// Failover: kill -9 the owning process and require reads to keep
	// succeeding on the survivors while their probes flip the dead peer
	// to down.
	st, err := getClusterStatus(t, addrs[0])
	if err != nil {
		t.Fatalf("cluster status: %v", err)
	}
	ownerID := ""
	for _, d := range st.Databases {
		if d.Name == "accept" {
			ownerID = d.Owner
		}
	}
	if ownerID == "" {
		t.Fatalf("no placement row for the database in %+v", st)
	}
	var survivors []string
	for i, id := range ids {
		if id != ownerID {
			survivors = append(survivors, addrs[i])
		}
	}
	if err := procs[ownerID].Process.Kill(); err != nil {
		t.Fatalf("kill -9 %s: %v", ownerID, err)
	}
	_, _ = procs[ownerID].Process.Wait()
	procs[ownerID].Process = nil

	// Reads on the survivors continue uninterrupted — each holds an
	// in-generation replica and serves it locally, so not a single
	// request may fail even before the probes notice the death.
	readCl := make([]*client.Client, len(survivors))
	for i, addr := range survivors {
		readCl[i] = client.New(client.Config{BaseURL: "http://" + addr, MaxRetries: 0, BreakerThreshold: -1})
	}
	detected := func() bool {
		for _, addr := range survivors {
			s, err := getClusterStatus(t, addr)
			if err != nil {
				return false
			}
			for _, p := range s.Peers {
				if p.ID == ownerID && p.Healthy {
					return false
				}
			}
		}
		return true
	}
	detectBy := time.Now().Add(5 * time.Second) // probe interval is 150ms
	for !detected() {
		for i, cl := range readCl {
			resp, err := cl.Query(ctx, client.QueryRequest{DB: "accept", Query: acceptQuery})
			if err != nil {
				t.Fatalf("read on survivor %s after owner kill: %v", survivors[i], err)
			}
			if !resp.Sat {
				t.Fatalf("read on survivor %s after owner kill: sat=false", survivors[i])
			}
		}
		if time.Now().After(detectBy) {
			t.Fatal("survivors never marked the killed owner down")
		}
	}

	// With the owner dead, a write routed through a survivor refuses with
	// the typed owner-down error rather than hanging or splitting brain.
	_, err = client.New(client.Config{BaseURL: "http://" + survivors[0], MaxRetries: 0, BreakerThreshold: -1}).
		RegisterDB(ctx, "accept", dbText(8))
	var se *client.StatusError
	if err == nil {
		t.Error("write through a survivor succeeded with the owner dead")
	} else if errors.As(err, &se) && (se.Code != http.StatusServiceUnavailable || se.ErrCode != "OWNER_DOWN") {
		t.Errorf("write with owner dead: %v, want 503 OWNER_DOWN", err)
	}

	// And reads are still fine afterwards.
	for i, cl := range readCl {
		resp, err := cl.Query(ctx, client.QueryRequest{DB: "accept", Query: acceptQuery})
		if err != nil || !resp.Sat {
			t.Errorf("final read on survivor %s: err=%v", survivors[i], err)
		}
	}
}
