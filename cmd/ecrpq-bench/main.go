// Command ecrpq-bench runs the full experiment suite (E1–E12 plus the
// ablations; see DESIGN.md for the experiment index) and prints the result
// tables as markdown — the same material recorded in EXPERIMENTS.md.
//
// Usage:
//
//	ecrpq-bench [-seed N] [-only E3,E5]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ecrpq/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed for all generators")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	outPath := flag.String("out", "", "also write the tables to this file")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecrpq-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	fmt.Fprintf(w, "# ECRPQ reproduction experiment suite (seed %d)\n\n", *seed)
	for _, tb := range experiments.All(*seed) {
		if len(want) > 0 && !want[tb.ID] {
			continue
		}
		fmt.Fprint(w, tb.Markdown())
	}
}
