// Command ecrpq evaluates an ECRPQ query against a graph database.
//
// Usage:
//
//	ecrpq -db graph.txt -query query.txt [-strategy auto|generic|reduction]
//	      [-witness] [-timeout 30s] [-trace out.json]
//
// The database format is one labelled edge per line after an alphabet
// header; the query format is the DSL of internal/query (see README.md).
// With free variables the answer set is printed, one tuple per line;
// otherwise the Boolean verdict (and, with -witness, the witness paths).
//
// With -trace the evaluation is traced end to end and a Chrome
// trace_event dump is written to the given file (load it at
// chrome://tracing or https://ui.perfetto.dev); a per-stage self-time
// breakdown is printed to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ecrpq"
	"ecrpq/internal/trace"
)

func main() {
	dbPath := flag.String("db", "", "graph database file")
	queryPath := flag.String("query", "", "query file")
	strategy := flag.String("strategy", "auto", "evaluation strategy: auto, generic, reduction")
	witness := flag.Bool("witness", false, "print the witness assignment and paths")
	relFiles := flag.String("rel", "", "comma-separated custom relation files (synchro text format); atom names resolve against these before built-ins")
	timeout := flag.Duration("timeout", 0, "abort evaluation after this long (0 = no limit)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event dump of the evaluation to this file")
	flag.Parse()
	if *dbPath == "" || *queryPath == "" {
		fmt.Fprintln(os.Stderr, "usage: ecrpq -db <file> -query <file> [-strategy auto|generic|reduction] [-witness] [-rel r1.txt,r2.txt] [-trace out.json]")
		os.Exit(2)
	}
	if err := run(*dbPath, *queryPath, *strategy, *witness, *relFiles, *timeout, *traceOut); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "ecrpq: evaluation exceeded the", *timeout, "timeout")
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "ecrpq:", err)
		os.Exit(1)
	}
}

func loadRelations(relFiles string) (map[string]*ecrpq.Relation, error) {
	registry := make(map[string]*ecrpq.Relation)
	if relFiles == "" {
		return registry, nil
	}
	for _, path := range strings.Split(relFiles, ",") {
		f, err := os.Open(strings.TrimSpace(path))
		if err != nil {
			return nil, err
		}
		rel, err := ecrpq.ParseRelation(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		if rel.Name() == "" {
			return nil, fmt.Errorf("%s: relation has no name", path)
		}
		registry[rel.Name()] = rel
	}
	return registry, nil
}

// writeTrace finishes tr, dumps it in Chrome trace_event format to path,
// and prints the per-stage self-time breakdown to stderr.
func writeTrace(tr *trace.Trace, path string) error {
	tr.Finish()
	data := tr.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: %d span(s) over %.2f ms written to %s\n", len(data.Spans), data.DurMs, path)
	total := data.DurMs * 1000
	for _, st := range data.Breakdown() {
		pct := 0.0
		if total > 0 {
			pct = 100 * st.SelfUs / total
		}
		fmt.Fprintf(os.Stderr, "  %-22s x%-4d self %8.0f us  (%5.1f%%)\n", st.Name, st.Count, st.SelfUs, pct)
	}
	return nil
}

func run(dbPath, queryPath, strategy string, witness bool, relFiles string, timeout time.Duration, traceOut string) error {
	dbFile, err := os.Open(dbPath)
	if err != nil {
		return err
	}
	defer dbFile.Close()
	db, err := ecrpq.ReadDB(dbFile)
	if err != nil {
		return err
	}
	registry, err := loadRelations(relFiles)
	if err != nil {
		return err
	}
	qFile, err := os.Open(queryPath)
	if err != nil {
		return err
	}
	defer qFile.Close()
	q, err := ecrpq.ParseQueryWithRelations(qFile, registry)
	if err != nil {
		return err
	}
	var opts ecrpq.Options
	switch strategy {
	case "auto":
		opts.Strategy = ecrpq.Auto
	case "generic":
		opts.Strategy = ecrpq.Generic
	case "reduction":
		opts.Strategy = ecrpq.Reduction
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var tr *trace.Trace
	if traceOut != "" {
		tr = trace.New("ecrpq")
		tr.SetStr("db", dbPath)
		tr.SetStr("query", queryPath)
		tr.SetStr("strategy_requested", strategy)
		ctx = trace.NewContext(ctx, tr)
		defer func() {
			if werr := writeTrace(tr, traceOut); werr != nil {
				fmt.Fprintln(os.Stderr, "ecrpq: writing trace:", werr)
			}
		}()
	}

	if len(q.Free) > 0 {
		answers, err := ecrpq.AnswersContext(ctx, db, q, opts)
		if err != nil {
			return err
		}
		fmt.Printf("answers(%s): %d tuple(s)\n", strings.Join(q.Free, ", "), len(answers))
		for _, tup := range answers {
			parts := make([]string, len(tup))
			for i, v := range tup {
				parts[i] = db.VertexName(v)
			}
			fmt.Println("  (" + strings.Join(parts, ", ") + ")")
		}
		return nil
	}

	res, err := ecrpq.EvaluateContext(ctx, db, q, opts)
	if err != nil {
		return err
	}
	if !res.Sat {
		fmt.Println("false")
		return nil
	}
	fmt.Println("true")
	if witness {
		if err := ecrpq.VerifyWitness(db, q, res); err != nil {
			return fmt.Errorf("internal: witness failed verification: %v", err)
		}
		var nodeVars []string
		for v := range res.Nodes {
			nodeVars = append(nodeVars, v)
		}
		sort.Strings(nodeVars)
		for _, v := range nodeVars {
			fmt.Printf("  %s = %s\n", v, db.VertexName(res.Nodes[v]))
		}
		var pathVars []string
		for p := range res.Paths {
			pathVars = append(pathVars, p)
		}
		sort.Strings(pathVars)
		for _, p := range pathVars {
			fmt.Printf("  %s: %s\n", p, res.Paths[p].Format(db))
		}
	}
	return nil
}
