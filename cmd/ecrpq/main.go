// Command ecrpq evaluates an ECRPQ query against a graph database.
//
// Usage:
//
//	ecrpq -db graph.txt -query query.txt [-strategy auto|generic|reduction]
//	      [-witness] [-timeout 30s] [-trace out.json]
//
// The database format is one labelled edge per line after an alphabet
// header; the query format is the DSL of internal/query (see README.md).
// With free variables the answer set is printed, one tuple per line;
// otherwise the Boolean verdict (and, with -witness, the witness paths).
//
// With -trace the evaluation is traced end to end and a Chrome
// trace_event dump is written to the given file (load it at
// chrome://tracing or https://ui.perfetto.dev); a per-stage self-time
// breakdown is printed to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ecrpq"
	"ecrpq/internal/planner"
	"ecrpq/internal/stats"
	"ecrpq/internal/trace"
)

func main() {
	dbPath := flag.String("db", "", "graph database file")
	queryPath := flag.String("query", "", "query file")
	strategy := flag.String("strategy", "auto", "evaluation strategy: auto, generic, reduction")
	witness := flag.Bool("witness", false, "print the witness assignment and paths")
	relFiles := flag.String("rel", "", "comma-separated custom relation files (synchro text format); atom names resolve against these before built-ins")
	timeout := flag.Duration("timeout", 0, "abort evaluation after this long (0 = no limit)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event dump of the evaluation to this file")
	explain := flag.Bool("explain", false, "print the cost-based plan (database statistics + planner decision) and, after evaluating, the measured per-stage times next to the estimates")
	flag.Parse()
	if *dbPath == "" || *queryPath == "" {
		fmt.Fprintln(os.Stderr, "usage: ecrpq -db <file> -query <file> [-strategy auto|generic|reduction] [-witness] [-explain] [-rel r1.txt,r2.txt] [-trace out.json]")
		os.Exit(2)
	}
	if err := run(*dbPath, *queryPath, *strategy, *witness, *explain, *relFiles, *timeout, *traceOut); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "ecrpq: evaluation exceeded the", *timeout, "timeout")
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "ecrpq:", err)
		os.Exit(1)
	}
}

func loadRelations(relFiles string) (map[string]*ecrpq.Relation, error) {
	registry := make(map[string]*ecrpq.Relation)
	if relFiles == "" {
		return registry, nil
	}
	for _, path := range strings.Split(relFiles, ",") {
		f, err := os.Open(strings.TrimSpace(path))
		if err != nil {
			return nil, err
		}
		rel, err := ecrpq.ParseRelation(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		if rel.Name() == "" {
			return nil, fmt.Errorf("%s: relation has no name", path)
		}
		registry[rel.Name()] = rel
	}
	return registry, nil
}

// writeTrace finishes tr, dumps it in Chrome trace_event format to path,
// and prints the per-stage self-time breakdown to stderr.
func writeTrace(tr *trace.Trace, path string) error {
	tr.Finish()
	data := tr.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: %d span(s) over %.2f ms written to %s\n", len(data.Spans), data.DurMs, path)
	total := data.DurMs * 1000
	for _, st := range data.Breakdown() {
		pct := 0.0
		if total > 0 {
			pct = 100 * st.SelfUs / total
		}
		fmt.Fprintf(os.Stderr, "  %-22s x%-4d self %8.0f us  (%5.1f%%)\n", st.Name, st.Count, st.SelfUs, pct)
	}
	return nil
}

// printExplain computes the database's statistics catalog, runs the
// cost-based planner on the query, prints the decision with per-stage
// estimates, and returns the decision so the caller can evaluate with
// the planner's strategy. Mirrors the daemon's POST /v1/explain for the
// offline CLI.
func printExplain(ctx context.Context, db *ecrpq.DB, q *ecrpq.Query, opts ecrpq.Options) (*planner.Decision, error) {
	cat, err := stats.Compute(ctx, db, 1)
	if err != nil {
		return nil, fmt.Errorf("computing statistics: %v", err)
	}
	plan, err := ecrpq.Explain(q, opts)
	if err != nil {
		return nil, err
	}
	dec := planner.Resolve(cat, plan, opts, planner.Config{})
	source := "planner"
	if opts.Strategy != ecrpq.Auto {
		source = "requested"
	} else if dec.UsedFallback {
		source = "fixed-rule"
	}
	fmt.Printf("strategy: %s (%s)\n", dec.Strategy, source)
	rendered, err := ecrpq.Explain(q, ecrpq.Options{
		Strategy:         dec.Strategy,
		MaxProductStates: opts.MaxProductStates,
		Parallelism:      opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	fmt.Print(rendered.String())
	fmt.Printf("costs: generic=%.0f reduction=%.0f (|V|=%d, any-reach selectivity %.4f)\n",
		dec.GenericCost, dec.ReductionCost, cat.Vertices, cat.AnyReachSelectivity)
	for _, st := range dec.Stages {
		fmt.Printf("  %-22s cost %12.0f  est %8.3f ms\n", st.Stage, st.Cost, st.EstimatedMs)
		if st.Detail != "" {
			fmt.Printf("    %s\n", st.Detail)
		}
	}
	return dec, nil
}

// printActuals prints the traced per-stage self-times next to the
// planner's estimates after an explained evaluation.
func printActuals(dec *planner.Decision, data trace.TraceData) {
	selfMs := make(map[string]float64)
	for _, st := range data.Breakdown() {
		if strings.HasPrefix(st.Name, "core/") {
			selfMs[st.Name] = st.SelfUs / 1000
		}
	}
	fmt.Println("measured (estimate vs actual):")
	seen := make(map[string]bool)
	for _, st := range dec.Stages {
		seen[st.Stage] = true
		if ms, ok := selfMs[st.Stage]; ok {
			fmt.Printf("  %-22s est %8.3f ms  actual %8.3f ms\n", st.Stage, st.EstimatedMs, ms)
		} else {
			fmt.Printf("  %-22s est %8.3f ms  actual        - (stage did not run)\n", st.Stage, st.EstimatedMs)
		}
	}
	var extra []string
	for name := range selfMs {
		if !seen[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Printf("  %-22s est        -     actual %8.3f ms\n", name, selfMs[name])
	}
}

func run(dbPath, queryPath, strategy string, witness, explain bool, relFiles string, timeout time.Duration, traceOut string) error {
	dbFile, err := os.Open(dbPath)
	if err != nil {
		return err
	}
	defer dbFile.Close()
	db, err := ecrpq.ReadDB(dbFile)
	if err != nil {
		return err
	}
	registry, err := loadRelations(relFiles)
	if err != nil {
		return err
	}
	qFile, err := os.Open(queryPath)
	if err != nil {
		return err
	}
	defer qFile.Close()
	q, err := ecrpq.ParseQueryWithRelations(qFile, registry)
	if err != nil {
		return err
	}
	var opts ecrpq.Options
	switch strategy {
	case "auto":
		opts.Strategy = ecrpq.Auto
	case "generic":
		opts.Strategy = ecrpq.Generic
	case "reduction":
		opts.Strategy = ecrpq.Reduction
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// -explain needs a trace even without -trace: the measured per-stage
	// times printed next to the estimates come from it.
	var tr *trace.Trace
	if traceOut != "" || explain {
		tr = trace.New("ecrpq")
		tr.SetStr("db", dbPath)
		tr.SetStr("query", queryPath)
		tr.SetStr("strategy_requested", strategy)
		ctx = trace.NewContext(ctx, tr)
		if traceOut != "" {
			defer func() {
				if werr := writeTrace(tr, traceOut); werr != nil {
					fmt.Fprintln(os.Stderr, "ecrpq: writing trace:", werr)
				}
			}()
		}
	}

	if explain {
		dec, err := printExplain(ctx, db, q, opts)
		if err != nil {
			return err
		}
		// Evaluate with the planner's choice so the measured times belong
		// to the plan just printed.
		opts.Strategy = dec.Strategy
		defer func() {
			tr.Finish()
			printActuals(dec, tr.Snapshot())
		}()
	}

	if len(q.Free) > 0 {
		answers, err := ecrpq.AnswersContext(ctx, db, q, opts)
		if err != nil {
			return err
		}
		fmt.Printf("answers(%s): %d tuple(s)\n", strings.Join(q.Free, ", "), len(answers))
		for _, tup := range answers {
			parts := make([]string, len(tup))
			for i, v := range tup {
				parts[i] = db.VertexName(v)
			}
			fmt.Println("  (" + strings.Join(parts, ", ") + ")")
		}
		return nil
	}

	res, err := ecrpq.EvaluateContext(ctx, db, q, opts)
	if err != nil {
		return err
	}
	if !res.Sat {
		fmt.Println("false")
		return nil
	}
	fmt.Println("true")
	if witness {
		if err := ecrpq.VerifyWitness(db, q, res); err != nil {
			return fmt.Errorf("internal: witness failed verification: %v", err)
		}
		var nodeVars []string
		for v := range res.Nodes {
			nodeVars = append(nodeVars, v)
		}
		sort.Strings(nodeVars)
		for _, v := range nodeVars {
			fmt.Printf("  %s = %s\n", v, db.VertexName(res.Nodes[v]))
		}
		var pathVars []string
		for p := range res.Paths {
			pathVars = append(pathVars, p)
		}
		sort.Strings(pathVars)
		for _, p := range pathVars {
			fmt.Printf("  %s: %s\n", p, res.Paths[p].Format(db))
		}
	}
	return nil
}
