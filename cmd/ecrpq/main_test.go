package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const testDB = `
alphabet a b
u a v
v b w
`

func TestRunBoolean(t *testing.T) {
	db := writeTemp(t, "db.txt", testDB)
	q := writeTemp(t, "q.txt", "alphabet a b\nx -[ab]-> y\n")
	for _, strat := range []string{"auto", "generic", "reduction"} {
		if err := run(db, q, strat, true, false, "", 0, ""); err != nil {
			t.Errorf("strategy %s: %v", strat, err)
		}
	}
}

func TestRunTraceOutput(t *testing.T) {
	db := writeTemp(t, "db.txt", testDB)
	q := writeTemp(t, "q.txt", "alphabet a b\nx -[ab]-> y\n")
	out := filepath.Join(t.TempDir(), "out.json")
	if err := run(db, q, "reduction", false, false, "", 0, out); err != nil {
		t.Fatalf("traced run: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range events {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"core/decompose", "core/sweep", "core/cq_join"} {
		if !names[want] {
			t.Errorf("trace missing span %q; got %v", want, names)
		}
	}
}

func TestRunAnswers(t *testing.T) {
	db := writeTemp(t, "db.txt", testDB)
	q := writeTemp(t, "q.txt", "alphabet a b\nfree x\nx -[a]-> y\n")
	if err := run(db, q, "auto", false, false, "", 0, ""); err != nil {
		t.Errorf("answers: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	db := writeTemp(t, "db.txt", testDB)
	q := writeTemp(t, "q.txt", "alphabet a b\nx -[ab]-> y\n")
	if err := run("/nonexistent", q, "auto", false, false, "", 0, ""); err == nil {
		t.Error("missing db should error")
	}
	if err := run(db, "/nonexistent", "auto", false, false, "", 0, ""); err == nil {
		t.Error("missing query should error")
	}
	if err := run(db, q, "bogus", false, false, "", 0, ""); err == nil {
		t.Error("unknown strategy should error")
	}
	badQ := writeTemp(t, "bad.txt", "not a query")
	if err := run(db, badQ, "auto", false, false, "", 0, ""); err == nil {
		t.Error("malformed query should error")
	}
	badDB := writeTemp(t, "baddb.txt", "junk")
	if err := run(badDB, q, "auto", false, false, "", 0, ""); err == nil {
		t.Error("malformed db should error")
	}
}

func TestRunWithCustomRelation(t *testing.T) {
	db := writeTemp(t, "db.txt", testDB)
	rel := writeTemp(t, "rel.txt", `relation myeq
arity 2
alphabet a b
states 1
start 0
accept 0
0 (a,a) 0
0 (b,b) 0
`)
	q := writeTemp(t, "q.txt", `
alphabet a b
x -[$p1]-> y
x -[$p2]-> y
rel myeq(p1, p2)
`)
	if err := run(db, q, "auto", true, false, rel, 0, ""); err != nil {
		t.Errorf("custom relation: %v", err)
	}
	if err := run(db, q, "auto", false, false, "/nonexistent.txt", 0, ""); err == nil {
		t.Error("missing relation file should error")
	}
	badRel := writeTemp(t, "bad.txt", "garbage")
	if err := run(db, q, "auto", false, false, badRel, 0, ""); err == nil {
		t.Error("malformed relation file should error")
	}
	// Relation without a name line gets name "rel"... actually Parse
	// defaults name to "" unless declared; our format requires it for the
	// registry.
	noName := writeTemp(t, "noname.txt", `arity 2
alphabet a b
universal
`)
	if err := run(db, q, "auto", false, false, noName, 0, ""); err == nil {
		t.Error("unnamed relation should error")
	}
}
