package main

import (
	"ecrpq/internal/client"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const shellDB = `
alphabet a b
u a v
v b w
u b n
n a w
`

// runScript feeds lines to a fresh shell and returns the transcript.
func runScript(t *testing.T, setup func(*shell), lines ...string) string {
	t.Helper()
	var out strings.Builder
	sh := newShell(&out)
	if setup != nil {
		setup(sh)
	}
	sh.repl(strings.NewReader(strings.Join(lines, "\n")))
	return out.String()
}

func TestShellEvaluateBoolean(t *testing.T) {
	db := writeTemp(t, "db.txt", shellDB)
	out := runScript(t, nil,
		".db "+db,
		".query",
		"alphabet a b",
		"x -[$p1]-> y",
		"x -[$p2]-> y",
		"rel eqlen(p1, p2)",
		"lang p1 ab",
		"lang p2 ba",
		".go",
		".quit",
	)
	for _, want := range []string{"loaded", "satisfiable: true", "p1:", "p2:"} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestShellTraceCommand(t *testing.T) {
	db := writeTemp(t, "db.txt", shellDB)
	out := runScript(t, nil,
		".trace last",
		".trace on",
		".db "+db,
		".query",
		"alphabet a b",
		"x -[ab]-> y",
		".go",
		".trace last",
		".trace off",
		".trace bogus",
		".quit",
	)
	for _, want := range []string{
		"no trace recorded yet",
		"tracing: on",
		"traced:",
		"trace shell:",
		"core/decompose",
		"tracing: off",
		"usage: .trace on|off|last",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestShellTraceRemoteRejected(t *testing.T) {
	var sb strings.Builder
	sh := newShell(&sb)
	sh.remote = &client.Client{}
	sh.handle(".trace on")
	if !strings.Contains(sb.String(), "local-mode only") {
		t.Errorf("remote .trace should be rejected: %s", sb.String())
	}
}

func TestShellAnswers(t *testing.T) {
	db := writeTemp(t, "db.txt", shellDB)
	out := runScript(t, nil,
		".db "+db,
		".query",
		"alphabet a b",
		"free x",
		"x -[ab]-> y",
		".go",
		".quit",
	)
	if !strings.Contains(out, "1 answer(s)") || !strings.Contains(out, "(u)") {
		t.Errorf("transcript:\n%s", out)
	}
}

func TestShellExplainMeasuresSat(t *testing.T) {
	out := runScript(t, nil,
		".query",
		"alphabet a",
		"x -[$p1]-> y",
		"x -[$p2]-> y",
		"rel eqlen(p1, p2)",
		".explain",
		".query",
		"alphabet a",
		"x -[$p1]-> y",
		"x -[$p2]-> y",
		"rel eqlen(p1, p2)",
		".measures",
		".query",
		"alphabet a",
		"x -[$p]-> y",
		"lang p aa",
		".sat",
		".quit",
	)
	for _, want := range []string{"strategy: reduction", "cc_vertex=2", "satisfiable (on some database): true", "canonical database:"} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestShellCustomRelationAndStrategy(t *testing.T) {
	db := writeTemp(t, "db.txt", shellDB)
	rel := writeTemp(t, "r.txt", `relation same
arity 2
alphabet a b
states 1
start 0
accept 0
0 (a,a) 0
0 (b,b) 0
`)
	out := runScript(t, nil,
		".db "+db,
		".rel "+rel,
		".strategy generic",
		".query",
		"alphabet a b",
		"x -[$p1]-> y",
		"x -[$p2]-> y",
		"rel same(p1, p2)",
		".go",
		".quit",
	)
	for _, want := range []string{"loaded relation same", "strategy: generic", "satisfiable: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestShellErrors(t *testing.T) {
	out := runScript(t, nil,
		".db",               // usage
		".db /nonexistent",  // missing file
		".rel",              // usage
		".rel /nonexistent", // missing file
		".strategy",         // usage
		".strategy warp",    // unknown
		".go",               // no block
		".bogus",            // unknown command
		".query",
		"this is not a query",
		".go", // parse error
		".query",
		"alphabet a",
		"x -[a]-> y",
		".go", // no database
		".help",
		".quit",
	)
	for _, want := range []string{
		"usage: .db", "error:", "usage: .rel", "usage: .strategy",
		"unknown strategy", "no query block", "unknown command",
		"parse error", "no database loaded", "commands:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestShellUnnamedRelationRejected(t *testing.T) {
	rel := writeTemp(t, "r.txt", "arity 2\nalphabet a\nuniversal\n")
	out := runScript(t, nil, ".rel "+rel, ".quit")
	if !strings.Contains(out, "no name") {
		t.Errorf("transcript:\n%s", out)
	}
}
