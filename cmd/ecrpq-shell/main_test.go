package main

import (
	"io"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecrpq/internal/client"
	"ecrpq/internal/server"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const shellDB = `
alphabet a b
u a v
v b w
u b n
n a w
`

// runScript feeds lines to a fresh shell and returns the transcript.
func runScript(t *testing.T, setup func(*shell), lines ...string) string {
	t.Helper()
	var out strings.Builder
	sh := newShell(&out)
	if setup != nil {
		setup(sh)
	}
	sh.repl(strings.NewReader(strings.Join(lines, "\n")))
	return out.String()
}

func TestShellEvaluateBoolean(t *testing.T) {
	db := writeTemp(t, "db.txt", shellDB)
	out := runScript(t, nil,
		".db "+db,
		".query",
		"alphabet a b",
		"x -[$p1]-> y",
		"x -[$p2]-> y",
		"rel eqlen(p1, p2)",
		"lang p1 ab",
		"lang p2 ba",
		".go",
		".quit",
	)
	for _, want := range []string{"loaded", "satisfiable: true", "p1:", "p2:"} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestShellTraceCommand(t *testing.T) {
	db := writeTemp(t, "db.txt", shellDB)
	out := runScript(t, nil,
		".trace last",
		".trace on",
		".db "+db,
		".query",
		"alphabet a b",
		"x -[ab]-> y",
		".go",
		".trace last",
		".trace off",
		".trace bogus",
		".quit",
	)
	for _, want := range []string{
		"no trace recorded yet",
		"tracing: on",
		"traced:",
		"trace shell:",
		"core/decompose",
		"tracing: off",
		"usage: .trace on|off|last",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestShellTraceRemoteRejected(t *testing.T) {
	var sb strings.Builder
	sh := newShell(&sb)
	sh.remote = &client.Client{}
	sh.handle(".trace on")
	if !strings.Contains(sb.String(), "local-mode only") {
		t.Errorf("remote .trace should be rejected: %s", sb.String())
	}
}

func TestShellAnswers(t *testing.T) {
	db := writeTemp(t, "db.txt", shellDB)
	out := runScript(t, nil,
		".db "+db,
		".query",
		"alphabet a b",
		"free x",
		"x -[ab]-> y",
		".go",
		".quit",
	)
	if !strings.Contains(out, "1 answer(s)") || !strings.Contains(out, "(u)") {
		t.Errorf("transcript:\n%s", out)
	}
}

func TestShellExplainMeasuresSat(t *testing.T) {
	out := runScript(t, nil,
		".query",
		"alphabet a",
		"x -[$p1]-> y",
		"x -[$p2]-> y",
		"rel eqlen(p1, p2)",
		".explain",
		".query",
		"alphabet a",
		"x -[$p1]-> y",
		"x -[$p2]-> y",
		"rel eqlen(p1, p2)",
		".measures",
		".query",
		"alphabet a",
		"x -[$p]-> y",
		"lang p aa",
		".sat",
		".quit",
	)
	for _, want := range []string{"strategy: reduction", "cc_vertex=2", "satisfiable (on some database): true", "canonical database:"} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestShellCustomRelationAndStrategy(t *testing.T) {
	db := writeTemp(t, "db.txt", shellDB)
	rel := writeTemp(t, "r.txt", `relation same
arity 2
alphabet a b
states 1
start 0
accept 0
0 (a,a) 0
0 (b,b) 0
`)
	out := runScript(t, nil,
		".db "+db,
		".rel "+rel,
		".strategy generic",
		".query",
		"alphabet a b",
		"x -[$p1]-> y",
		"x -[$p2]-> y",
		"rel same(p1, p2)",
		".go",
		".quit",
	)
	for _, want := range []string{"loaded relation same", "strategy: generic", "satisfiable: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestShellErrors(t *testing.T) {
	out := runScript(t, nil,
		".db",               // usage
		".db /nonexistent",  // missing file
		".rel",              // usage
		".rel /nonexistent", // missing file
		".strategy",         // usage
		".strategy warp",    // unknown
		".go",               // no block
		".bogus",            // unknown command
		".query",
		"this is not a query",
		".go", // parse error
		".query",
		"alphabet a",
		"x -[a]-> y",
		".go", // no database
		".help",
		".quit",
	)
	for _, want := range []string{
		"usage: .db", "error:", "usage: .rel", "usage: .strategy",
		"unknown strategy", "no query block", "unknown command",
		"parse error", "no database loaded", "commands:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestShellUnnamedRelationRejected(t *testing.T) {
	rel := writeTemp(t, "r.txt", "arity 2\nalphabet a\nuniversal\n")
	out := runScript(t, nil, ".rel "+rel, ".quit")
	if !strings.Contains(out, "no name") {
		t.Errorf("transcript:\n%s", out)
	}
}

// TestShellPagingCommands drives .limit/.next against a real daemon:
// a paged .go streams through /v1/enumerate, .next walks the cursor to
// the end, an extra .next reports no enumeration in progress, and a
// database re-register mid-enumeration surfaces the stale-cursor
// restart hint.
func TestShellPagingCommands(t *testing.T) {
	srv := server.New(server.Config{Logger: log.New(io.Discard, "", 0)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	db := writeTemp(t, "db.txt", shellDB)

	// shellDB has 9 (x, y) pairs with any (a|b)* path (4 reflexive plus
	// u->v, u->n, v->w, n->w, u->w), so limit 2 gives pages 2,2,2,2,1.
	query := []string{
		".query",
		"alphabet a b",
		"free x y",
		"x -[(a|b)*]-> y",
		".go",
	}
	lines := []string{".register g " + db, ".limit 2"}
	lines = append(lines, query...)
	lines = append(lines, ".next", ".next", ".next", ".next", ".next")
	// Restart the enumeration, then yank the generation out from under
	// the cursor before the second page.
	lines = append(lines, query...)
	lines = append(lines, ".register g "+db, ".next", ".quit")
	out := runScript(t, func(sh *shell) {
		sh.remote = client.New(client.Config{BaseURL: ts.URL, MaxRetries: 1})
	}, lines...)

	for _, want := range []string{
		"page limit: 2",
		"(u, v)",
		"2 answer(s) this page, 2 so far (.next for more)",
		"1 answer(s) this page, 9 total — end of results",
		"no enumeration in progress",
		"cursor went stale",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

// TestShellPagingLocalRejected: the cursor API is daemon-side, so the
// paging commands refuse to run in local mode.
func TestShellPagingLocalRejected(t *testing.T) {
	out := runScript(t, nil, ".limit 2", ".next", ".quit")
	for _, want := range []string{
		".limit needs remote mode",
		".next needs remote mode",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

// TestShellLimitValidation covers usage errors and turning paging off.
func TestShellLimitValidation(t *testing.T) {
	srv := server.New(server.Config{Logger: log.New(io.Discard, "", 0)})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	out := runScript(t, func(sh *shell) {
		sh.remote = client.New(client.Config{BaseURL: ts.URL})
	}, ".limit", ".limit -3", ".limit zero", ".limit 4", ".limit 0", ".next", ".quit")
	for _, want := range []string{
		"usage: .limit",
		"non-negative integer",
		"page limit: 4",
		"paging: off",
		"no enumeration in progress",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}
