// Command ecrpq-shell is an interactive shell for exploring graph databases
// with ECRPQ queries, either in-process or against a running ecrpqd.
//
// Usage:
//
//	ecrpq-shell [-db graph.txt]
//	ecrpq-shell -remote http://127.0.0.1:8377
//
// Commands (one per line):
//
//	.help                 show this help
//	.db <file>            load a database file (local mode)
//	.rel <file>           load a custom relation file (synchro format)
//	.strategy <name>      auto | generic | reduction
//	.query                start a query block; finish with .go (or .explain)
//	.go                   evaluate the current query block
//	.explain [run]        print the plan of the current query block; in remote
//	                      mode the daemon's cost-based planner answers, and
//	                      ".explain run" also executes the query so measured
//	                      per-stage times appear next to the estimates
//	.measures             print measures + regimes of the current query block
//	.sat                  database-independent satisfiability (local only)
//	.trace on|off|last    toggle evaluation tracing / show the last trace
//	.register <name> <f>  remote: register file f as database <name>
//	.use <name>           remote: target queries at database <name>
//	.dbs                  remote: list the daemon's databases
//	.drop <name>          remote: drop a database
//	.limit <n>            remote: page size for .go (0 = materialize fully)
//	.next                 remote: fetch the next page of the current enumeration
//	.quit                 exit
//
// In remote mode requests go through the fault-tolerant internal/client
// (backoff with jitter, Retry-After, circuit breaker), so a daemon that is
// restarting or shedding load is retried instead of surfacing every blip.
//
// Anything else inside a query block is accumulated as query DSL text.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"ecrpq"
	"ecrpq/internal/client"
	"ecrpq/internal/trace"
	"ecrpq/internal/twolevel"
)

func main() {
	dbPath := flag.String("db", "", "initial database file")
	remote := flag.String("remote", "", "ecrpqd base URL (e.g. http://127.0.0.1:8377); empty = in-process")
	flag.Parse()
	sh := newShell(os.Stdout)
	if *remote != "" {
		sh.remote = client.New(client.Config{BaseURL: *remote})
		h, err := sh.remote.Health(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecrpq-shell:", err)
			os.Exit(1)
		}
		fmt.Fprintf(sh.out, "connected to %s: %d database(s)\n", *remote, h.Databases)
	}
	if *dbPath != "" {
		if sh.remote != nil {
			fmt.Fprintln(os.Stderr, "ecrpq-shell: -db is local-mode only (use .register in remote mode)")
			os.Exit(1)
		}
		if err := sh.loadDB(*dbPath); err != nil {
			fmt.Fprintln(os.Stderr, "ecrpq-shell:", err)
			os.Exit(1)
		}
	}
	sh.repl(os.Stdin)
}

// shell holds the interactive session state.
type shell struct {
	out      io.Writer
	db       *ecrpq.DB
	strategy ecrpq.Strategy
	registry map[string]*ecrpq.Relation
	inQuery  bool
	queryBuf strings.Builder

	// Remote mode: non-nil client plus the .use-selected database name.
	remote   *client.Client
	remoteDB string

	// Paging (remote mode): .limit sets the page size; a .go with a
	// non-zero limit streams through /v1/enumerate and .next resumes
	// from the server-issued cursor.
	pageLimit int
	enum      *enumState

	// Tracing: when traceOn, local evaluations are traced and the most
	// recent trace is kept for .trace last.
	traceOn   bool
	lastTrace *trace.TraceData
}

func newShell(out io.Writer) *shell {
	return &shell{out: out, strategy: ecrpq.Auto, registry: make(map[string]*ecrpq.Relation)}
}

// enumState is an in-flight paged enumeration. It pins the query text,
// database, and strategy the cursor was minted for, so .next keeps
// paging the same enumeration even if the user changes .strategy or
// .use between pages.
type enumState struct {
	db       string
	query    string
	strategy string
	cursor   string
	fetched  int
}

func (s *shell) repl(in io.Reader) {
	sc := bufio.NewScanner(in)
	fmt.Fprintln(s.out, "ecrpq shell — .help for commands")
	for sc.Scan() {
		if quit := s.handle(sc.Text()); quit {
			return
		}
	}
}

// handle processes one input line, returning true to quit.
func (s *shell) handle(line string) bool {
	trimmed := strings.TrimSpace(line)
	if s.inQuery && !strings.HasPrefix(trimmed, ".") {
		s.queryBuf.WriteString(line)
		s.queryBuf.WriteString("\n")
		return false
	}
	fields := strings.Fields(trimmed)
	if len(fields) == 0 {
		return false
	}
	switch fields[0] {
	case ".help":
		fmt.Fprint(s.out, helpText)
	case ".quit", ".exit":
		return true
	case ".db":
		if s.remote != nil {
			fmt.Fprintln(s.out, "error: .db is local-mode only; use .register <name> <file> in remote mode")
			return false
		}
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: .db <file>")
			return false
		}
		if err := s.loadDB(fields[1]); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	case ".register":
		if s.remote == nil {
			fmt.Fprintln(s.out, "error: .register needs remote mode (-remote URL)")
			return false
		}
		if len(fields) != 3 {
			fmt.Fprintln(s.out, "usage: .register <name> <file>")
			return false
		}
		if err := s.remoteRegister(fields[1], fields[2]); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	case ".use":
		if s.remote == nil {
			fmt.Fprintln(s.out, "error: .use needs remote mode (-remote URL)")
			return false
		}
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: .use <name>")
			return false
		}
		s.remoteDB = fields[1]
		fmt.Fprintln(s.out, "using database:", s.remoteDB)
	case ".dbs":
		if s.remote == nil {
			fmt.Fprintln(s.out, "error: .dbs needs remote mode (-remote URL)")
			return false
		}
		infos, err := s.remote.ListDBs(context.Background())
		if err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return false
		}
		for _, d := range infos {
			fmt.Fprintf(s.out, "  %s  gen=%d vertices=%d\n", d.Name, d.Generation, d.Vertices)
		}
		fmt.Fprintf(s.out, "%d database(s)\n", len(infos))
	case ".drop":
		if s.remote == nil {
			fmt.Fprintln(s.out, "error: .drop needs remote mode (-remote URL)")
			return false
		}
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: .drop <name>")
			return false
		}
		if err := s.remote.DropDB(context.Background(), fields[1]); err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return false
		}
		fmt.Fprintln(s.out, "dropped:", fields[1])
		if s.remoteDB == fields[1] {
			s.remoteDB = ""
		}
	case ".limit":
		if s.remote == nil {
			fmt.Fprintln(s.out, "error: .limit needs remote mode (-remote URL); local .go always materializes")
			return false
		}
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: .limit <n>  (0 turns paging off)")
			return false
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			fmt.Fprintln(s.out, "error: .limit wants a non-negative integer")
			return false
		}
		s.pageLimit = n
		if n == 0 {
			fmt.Fprintln(s.out, "paging: off (.go materializes full answer sets)")
		} else {
			fmt.Fprintf(s.out, "page limit: %d (.go streams pages; .next for more)\n", n)
		}
	case ".next":
		if s.remote == nil {
			fmt.Fprintln(s.out, "error: .next needs remote mode (-remote URL)")
			return false
		}
		if s.enum == nil {
			fmt.Fprintln(s.out, "error: no enumeration in progress (.limit <n>, then .go)")
			return false
		}
		s.remoteNext()
	case ".rel":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: .rel <file>")
			return false
		}
		if err := s.loadRel(fields[1]); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	case ".strategy":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: .strategy auto|generic|reduction")
			return false
		}
		switch fields[1] {
		case "auto":
			s.strategy = ecrpq.Auto
		case "generic":
			s.strategy = ecrpq.Generic
		case "reduction":
			s.strategy = ecrpq.Reduction
		default:
			fmt.Fprintln(s.out, "error: unknown strategy", fields[1])
			return false
		}
		fmt.Fprintln(s.out, "strategy:", s.strategy)
	case ".query":
		s.inQuery = true
		s.queryBuf.Reset()
		fmt.Fprintln(s.out, "enter query DSL; finish with .go, .explain, .measures or .sat")
	case ".go":
		if s.remote != nil {
			s.remoteGo()
			return false
		}
		s.withQuery(func(q *ecrpq.Query) { s.evaluate(q) })
	case ".explain":
		if s.remote != nil {
			s.remoteExplain(len(fields) == 2 && fields[1] == "run")
			return false
		}
		s.withQuery(func(q *ecrpq.Query) {
			plan, err := ecrpq.Explain(q, ecrpq.Options{Strategy: s.strategy})
			if err != nil {
				fmt.Fprintln(s.out, "error:", err)
				return
			}
			fmt.Fprint(s.out, plan.String())
		})
	case ".measures":
		if s.remote != nil {
			s.remoteMeasures()
			return false
		}
		s.withQuery(func(q *ecrpq.Query) {
			m := ecrpq.QueryMeasures(q)
			fmt.Fprintf(s.out, "cc_vertex=%d cc_hedge=%d tw=[%d,%d]\n",
				m.CCVertex, m.CCHedge, m.TreewidthLower, m.TreewidthUpper)
			ec, pc := twolevel.Classify(true, true, true)
			fmt.Fprintf(s.out, "bounded family regimes: eval %s; p-eval %s\n", ec, pc)
		})
	case ".trace":
		if s.remote != nil {
			fmt.Fprintln(s.out, "error: .trace is local-mode only (the daemon serves /debug/trace/recent)")
			return false
		}
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: .trace on|off|last")
			return false
		}
		switch fields[1] {
		case "on":
			s.traceOn = true
			fmt.Fprintln(s.out, "tracing: on")
		case "off":
			s.traceOn = false
			fmt.Fprintln(s.out, "tracing: off")
		case "last":
			s.printLastTrace()
		default:
			fmt.Fprintln(s.out, "usage: .trace on|off|last")
		}
	case ".sat":
		if s.remote != nil {
			fmt.Fprintln(s.out, "error: .sat is local-mode only")
			return false
		}
		s.withQuery(func(q *ecrpq.Query) {
			db, res, sat, err := ecrpq.Satisfiable(q)
			if err != nil {
				fmt.Fprintln(s.out, "error:", err)
				return
			}
			fmt.Fprintln(s.out, "satisfiable (on some database):", sat)
			if sat {
				fmt.Fprintf(s.out, "canonical database: %d vertices, %d edges\n",
					db.NumVertices(), db.NumEdges())
				_ = res
			}
		})
	default:
		fmt.Fprintf(s.out, "unknown command %q (.help for help)\n", fields[0])
	}
	return false
}

// withQuery parses the accumulated query block and runs fn on it.
func (s *shell) withQuery(fn func(*ecrpq.Query)) {
	if !s.inQuery {
		fmt.Fprintln(s.out, "error: no query block; start with .query")
		return
	}
	s.inQuery = false
	q, err := ecrpq.ParseQueryWithRelations(strings.NewReader(s.queryBuf.String()), s.registry)
	if err != nil {
		fmt.Fprintln(s.out, "parse error:", err)
		return
	}
	fn(q)
}

// takeQuery consumes the current query block as raw DSL text (remote mode
// ships the text; the daemon parses it with its own relation registry).
func (s *shell) takeQuery() (string, bool) {
	if !s.inQuery {
		fmt.Fprintln(s.out, "error: no query block; start with .query")
		return "", false
	}
	s.inQuery = false
	return s.queryBuf.String(), true
}

// remoteGo evaluates the current query block on the daemon. Ctrl-C cancels
// the request (the server aborts the evaluation server-side).
func (s *shell) remoteGo() {
	text, ok := s.takeQuery()
	if !ok {
		return
	}
	if s.remoteDB == "" {
		fmt.Fprintln(s.out, "error: no database selected (.use <name>)")
		return
	}
	if s.pageLimit > 0 {
		// Paged mode: start a fresh enumeration and fetch its first page.
		s.enum = &enumState{db: s.remoteDB, query: text, strategy: s.strategy.String()}
		s.remoteNext()
		return
	}
	s.enum = nil // a materializing .go abandons any paging state
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	resp, err := s.remote.Query(ctx, client.QueryRequest{
		DB: s.remoteDB, Query: text, Strategy: s.strategy.String(),
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(s.out, "interrupted")
			return
		}
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	if len(resp.Free) > 0 {
		fmt.Fprintf(s.out, "%d answer(s)\n", len(resp.Answers))
		for _, row := range resp.Answers {
			fmt.Fprintln(s.out, " ", "("+strings.Join(row, ", ")+")")
		}
		return
	}
	fmt.Fprintf(s.out, "satisfiable: %t (strategy: %s, cache: %s, %.2fms)\n",
		resp.Sat, resp.Strategy, resp.Cache, resp.ElapsedMs)
	if resp.Sat {
		var pvs []string
		for p := range resp.Paths {
			pvs = append(pvs, p)
		}
		sort.Strings(pvs)
		for _, p := range pvs {
			fmt.Fprintf(s.out, "  %s: %s\n", p, resp.Paths[p])
		}
	}
}

// remoteNext fetches the next page of the current enumeration via the
// cursor API. The client retries the request with GET-like idempotent
// semantics (the server's enumeration order is deterministic, so
// re-sending the same cursor after a shed or timeout yields the same
// page). A 410 STALE_CURSOR means the database was re-registered under
// the cursor; the enumeration cannot resume and must restart with .go.
func (s *shell) remoteNext() {
	st := s.enum
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	resp, err := s.remote.Enumerate(ctx, client.EnumerateRequest{
		DB: st.db, Query: st.query, Strategy: st.strategy,
		Limit: s.pageLimit, Cursor: st.cursor,
	})
	if err != nil {
		var se *client.StatusError
		if errors.As(err, &se) && se.ErrCode == "STALE_CURSOR" {
			s.enum = nil
			fmt.Fprintln(s.out, "error: cursor went stale (database re-registered mid-enumeration); .go restarts from the first page")
			return
		}
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(s.out, "interrupted")
			return
		}
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	if len(resp.Free) == 0 {
		// Boolean query: one empty tuple iff satisfiable; nothing to page.
		s.enum = nil
		fmt.Fprintf(s.out, "satisfiable: %t (strategy: %s, cache: %s, %.2fms)\n",
			resp.Count > 0, resp.Strategy, resp.Cache, resp.ElapsedMs)
		return
	}
	for _, row := range resp.Answers {
		fmt.Fprintln(s.out, " ", "("+strings.Join(row, ", ")+")")
	}
	st.fetched += resp.Count
	st.cursor = resp.NextCursor
	if resp.More {
		fmt.Fprintf(s.out, "%d answer(s) this page, %d so far (.next for more)\n",
			resp.Count, st.fetched)
		return
	}
	s.enum = nil
	fmt.Fprintf(s.out, "%d answer(s) this page, %d total — end of results\n",
		resp.Count, st.fetched)
}

// remoteExplain asks the daemon which plan it would run for the current
// query block — the cost-based planner's decision with per-stage
// estimates. With execute set (".explain run") the daemon also evaluates
// the query and the table gains a measured-actual column, making
// estimate-vs-actual error visible at the prompt.
func (s *shell) remoteExplain(execute bool) {
	text, ok := s.takeQuery()
	if !ok {
		return
	}
	if s.remoteDB == "" {
		fmt.Fprintln(s.out, "error: no database selected (.use <name>)")
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	resp, err := s.remote.Explain(ctx, client.ExplainRequest{
		DB: s.remoteDB, Query: text, Strategy: s.strategy.String(), Execute: execute,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(s.out, "interrupted")
			return
		}
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprintf(s.out, "strategy: %s (%s)  generation=%d", resp.Strategy, resp.StrategySource, resp.Generation)
	if resp.StatsGeneration > 0 {
		fmt.Fprintf(s.out, "  stats_gen=%d", resp.StatsGeneration)
	}
	fmt.Fprintln(s.out)
	fmt.Fprint(s.out, resp.Plan)
	if len(resp.Stages) > 0 {
		fmt.Fprintln(s.out, "stages (cost model units; ms estimated vs measured):")
		for _, st := range resp.Stages {
			line := fmt.Sprintf("  %-22s cost %12.0f  est %8.3f ms", st.Stage, st.Cost, st.EstimatedMs)
			if st.Measured {
				line += fmt.Sprintf("  actual %8.3f ms", st.ActualMs)
			}
			fmt.Fprintln(s.out, line)
			if st.Detail != "" {
				fmt.Fprintf(s.out, "    %s\n", st.Detail)
			}
		}
	}
	if resp.Executed && resp.Sat != nil {
		fmt.Fprintf(s.out, "executed: satisfiable=%t (%.2fms)\n", *resp.Sat, resp.ElapsedMs)
	}
}

// remoteMeasures asks the daemon for the block's structural measures.
func (s *shell) remoteMeasures() {
	text, ok := s.takeQuery()
	if !ok {
		return
	}
	m, err := s.remote.Measures(context.Background(), text)
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(s.out, "  %s=%v\n", k, m[k])
	}
}

// remoteRegister uploads a database file under name.
func (s *shell) remoteRegister(name, path string) error {
	text, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	res, err := s.remote.RegisterDB(context.Background(), name, string(text))
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "registered %s: gen=%d vertices=%d replaced=%t\n",
		res.Name, res.Generation, res.Vertices, res.Replaced)
	if s.remoteDB == "" {
		s.remoteDB = name
		fmt.Fprintln(s.out, "using database:", name)
	}
	return nil
}

func (s *shell) evaluate(q *ecrpq.Query) {
	if s.db == nil {
		fmt.Fprintln(s.out, "error: no database loaded (.db <file>)")
		return
	}
	// Ctrl-C aborts the running evaluation (via context cancellation in
	// the engine's search loops) and returns to the prompt; outside an
	// evaluation it keeps its usual kill-the-process meaning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if s.traceOn {
		tr := trace.New("shell")
		tr.SetStr("strategy_requested", s.strategy.String())
		ctx = trace.NewContext(ctx, tr)
		defer func() {
			tr.Finish()
			data := tr.Snapshot()
			s.lastTrace = &data
			fmt.Fprintf(s.out, "traced: %d span(s), %.2f ms (.trace last for the breakdown)\n",
				len(data.Spans), data.DurMs)
		}()
	}
	opts := ecrpq.Options{Strategy: s.strategy}
	if len(q.Free) > 0 {
		answers, err := ecrpq.AnswersContext(ctx, s.db, q, opts)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(s.out, "interrupted")
				return
			}
			fmt.Fprintln(s.out, "error:", err)
			return
		}
		fmt.Fprintf(s.out, "%d answer(s)\n", len(answers))
		for _, tup := range answers {
			parts := make([]string, len(tup))
			for i, v := range tup {
				parts[i] = s.db.VertexName(v)
			}
			fmt.Fprintln(s.out, " ", "("+strings.Join(parts, ", ")+")")
		}
		return
	}
	res, err := ecrpq.EvaluateContext(ctx, s.db, q, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(s.out, "interrupted")
			return
		}
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprintln(s.out, "satisfiable:", res.Sat, "(strategy:", res.Stats.StrategyUsed, ")")
	if res.Sat {
		var pvs []string
		for p := range res.Paths {
			pvs = append(pvs, p)
		}
		sort.Strings(pvs)
		for _, p := range pvs {
			fmt.Fprintf(s.out, "  %s: %s\n", p, res.Paths[p].Format(s.db))
		}
	}
}

// printLastTrace renders the most recent traced evaluation as a
// per-stage self-time table.
func (s *shell) printLastTrace() {
	if s.lastTrace == nil {
		fmt.Fprintln(s.out, "error: no trace recorded yet (.trace on, then evaluate)")
		return
	}
	data := *s.lastTrace
	fmt.Fprintf(s.out, "trace %s: %d span(s), %.2f ms total\n", data.Name, len(data.Spans), data.DurMs)
	total := data.DurMs * 1000
	for _, st := range data.Breakdown() {
		pct := 0.0
		if total > 0 {
			pct = 100 * st.SelfUs / total
		}
		fmt.Fprintf(s.out, "  %-22s x%-4d self %8.0f us  (%5.1f%%)\n", st.Name, st.Count, st.SelfUs, pct)
	}
}

func (s *shell) loadDB(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := ecrpq.ReadDB(f)
	if err != nil {
		return err
	}
	s.db = db
	fmt.Fprintf(s.out, "loaded %s: %d vertices, %d edges over %s\n",
		path, db.NumVertices(), db.NumEdges(), db.Alphabet())
	return nil
}

func (s *shell) loadRel(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rel, err := ecrpq.ParseRelation(f)
	if err != nil {
		return err
	}
	if rel.Name() == "" {
		return fmt.Errorf("relation file %s has no name", path)
	}
	s.registry[rel.Name()] = rel
	fmt.Fprintf(s.out, "loaded relation %s (arity %d)\n", rel.Name(), rel.Arity())
	return nil
}

const helpText = `commands:
  .db <file>        load a database (local mode)
  .rel <file>       load a custom relation (synchro text format)
  .strategy <name>  auto | generic | reduction
  .query            start a query block (DSL lines follow)
  .go               evaluate the block against the database
  .explain          print the evaluation plan of the block
                    (remote: planner decision + cost estimates;
                     .explain run also executes and shows actual times)
  .measures         print structural measures + theorem regimes
  .sat              database-independent satisfiability (local only)
  .trace on|off     trace subsequent evaluations (local only)
  .trace last       per-stage breakdown of the most recent traced run
remote mode (-remote URL):
  .register <name> <file>  upload a database file under <name>
  .use <name>              target queries at database <name>
  .dbs                     list the daemon's databases
  .drop <name>             drop a database
  .limit <n>               page size for .go (0 = materialize fully)
  .next                    fetch the next page of the current enumeration
  .quit             exit
`
