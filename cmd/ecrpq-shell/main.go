// Command ecrpq-shell is an interactive shell for exploring graph databases
// with ECRPQ queries.
//
// Usage:
//
//	ecrpq-shell [-db graph.txt]
//
// Commands (one per line):
//
//	.help                 show this help
//	.db <file>            load a database file
//	.rel <file>           load a custom relation file (synchro format)
//	.strategy <name>      auto | generic | reduction
//	.query                start a query block; finish with .go (or .explain)
//	.go                   evaluate the current query block
//	.explain              print the plan of the current query block
//	.measures             print measures + regimes of the current query block
//	.sat                  database-independent satisfiability of the block
//	.quit                 exit
//
// Anything else inside a query block is accumulated as query DSL text.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"

	"ecrpq"
	"ecrpq/internal/twolevel"
)

func main() {
	dbPath := flag.String("db", "", "initial database file")
	flag.Parse()
	sh := newShell(os.Stdout)
	if *dbPath != "" {
		if err := sh.loadDB(*dbPath); err != nil {
			fmt.Fprintln(os.Stderr, "ecrpq-shell:", err)
			os.Exit(1)
		}
	}
	sh.repl(os.Stdin)
}

// shell holds the interactive session state.
type shell struct {
	out      io.Writer
	db       *ecrpq.DB
	strategy ecrpq.Strategy
	registry map[string]*ecrpq.Relation
	inQuery  bool
	queryBuf strings.Builder
}

func newShell(out io.Writer) *shell {
	return &shell{out: out, strategy: ecrpq.Auto, registry: make(map[string]*ecrpq.Relation)}
}

func (s *shell) repl(in io.Reader) {
	sc := bufio.NewScanner(in)
	fmt.Fprintln(s.out, "ecrpq shell — .help for commands")
	for sc.Scan() {
		if quit := s.handle(sc.Text()); quit {
			return
		}
	}
}

// handle processes one input line, returning true to quit.
func (s *shell) handle(line string) bool {
	trimmed := strings.TrimSpace(line)
	if s.inQuery && !strings.HasPrefix(trimmed, ".") {
		s.queryBuf.WriteString(line)
		s.queryBuf.WriteString("\n")
		return false
	}
	fields := strings.Fields(trimmed)
	if len(fields) == 0 {
		return false
	}
	switch fields[0] {
	case ".help":
		fmt.Fprint(s.out, helpText)
	case ".quit", ".exit":
		return true
	case ".db":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: .db <file>")
			return false
		}
		if err := s.loadDB(fields[1]); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	case ".rel":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: .rel <file>")
			return false
		}
		if err := s.loadRel(fields[1]); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	case ".strategy":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: .strategy auto|generic|reduction")
			return false
		}
		switch fields[1] {
		case "auto":
			s.strategy = ecrpq.Auto
		case "generic":
			s.strategy = ecrpq.Generic
		case "reduction":
			s.strategy = ecrpq.Reduction
		default:
			fmt.Fprintln(s.out, "error: unknown strategy", fields[1])
			return false
		}
		fmt.Fprintln(s.out, "strategy:", s.strategy)
	case ".query":
		s.inQuery = true
		s.queryBuf.Reset()
		fmt.Fprintln(s.out, "enter query DSL; finish with .go, .explain, .measures or .sat")
	case ".go":
		s.withQuery(func(q *ecrpq.Query) { s.evaluate(q) })
	case ".explain":
		s.withQuery(func(q *ecrpq.Query) {
			plan, err := ecrpq.Explain(q, ecrpq.Options{Strategy: s.strategy})
			if err != nil {
				fmt.Fprintln(s.out, "error:", err)
				return
			}
			fmt.Fprint(s.out, plan.String())
		})
	case ".measures":
		s.withQuery(func(q *ecrpq.Query) {
			m := ecrpq.QueryMeasures(q)
			fmt.Fprintf(s.out, "cc_vertex=%d cc_hedge=%d tw=[%d,%d]\n",
				m.CCVertex, m.CCHedge, m.TreewidthLower, m.TreewidthUpper)
			ec, pc := twolevel.Classify(true, true, true)
			fmt.Fprintf(s.out, "bounded family regimes: eval %s; p-eval %s\n", ec, pc)
		})
	case ".sat":
		s.withQuery(func(q *ecrpq.Query) {
			db, res, sat, err := ecrpq.Satisfiable(q)
			if err != nil {
				fmt.Fprintln(s.out, "error:", err)
				return
			}
			fmt.Fprintln(s.out, "satisfiable (on some database):", sat)
			if sat {
				fmt.Fprintf(s.out, "canonical database: %d vertices, %d edges\n",
					db.NumVertices(), db.NumEdges())
				_ = res
			}
		})
	default:
		fmt.Fprintf(s.out, "unknown command %q (.help for help)\n", fields[0])
	}
	return false
}

// withQuery parses the accumulated query block and runs fn on it.
func (s *shell) withQuery(fn func(*ecrpq.Query)) {
	if !s.inQuery {
		fmt.Fprintln(s.out, "error: no query block; start with .query")
		return
	}
	s.inQuery = false
	q, err := ecrpq.ParseQueryWithRelations(strings.NewReader(s.queryBuf.String()), s.registry)
	if err != nil {
		fmt.Fprintln(s.out, "parse error:", err)
		return
	}
	fn(q)
}

func (s *shell) evaluate(q *ecrpq.Query) {
	if s.db == nil {
		fmt.Fprintln(s.out, "error: no database loaded (.db <file>)")
		return
	}
	// Ctrl-C aborts the running evaluation (via context cancellation in
	// the engine's search loops) and returns to the prompt; outside an
	// evaluation it keeps its usual kill-the-process meaning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := ecrpq.Options{Strategy: s.strategy}
	if len(q.Free) > 0 {
		answers, err := ecrpq.AnswersContext(ctx, s.db, q, opts)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(s.out, "interrupted")
				return
			}
			fmt.Fprintln(s.out, "error:", err)
			return
		}
		fmt.Fprintf(s.out, "%d answer(s)\n", len(answers))
		for _, tup := range answers {
			parts := make([]string, len(tup))
			for i, v := range tup {
				parts[i] = s.db.VertexName(v)
			}
			fmt.Fprintln(s.out, " ", "("+strings.Join(parts, ", ")+")")
		}
		return
	}
	res, err := ecrpq.EvaluateContext(ctx, s.db, q, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(s.out, "interrupted")
			return
		}
		fmt.Fprintln(s.out, "error:", err)
		return
	}
	fmt.Fprintln(s.out, "satisfiable:", res.Sat, "(strategy:", res.Stats.StrategyUsed, ")")
	if res.Sat {
		var pvs []string
		for p := range res.Paths {
			pvs = append(pvs, p)
		}
		sort.Strings(pvs)
		for _, p := range pvs {
			fmt.Fprintf(s.out, "  %s: %s\n", p, res.Paths[p].Format(s.db))
		}
	}
}

func (s *shell) loadDB(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := ecrpq.ReadDB(f)
	if err != nil {
		return err
	}
	s.db = db
	fmt.Fprintf(s.out, "loaded %s: %d vertices, %d edges over %s\n",
		path, db.NumVertices(), db.NumEdges(), db.Alphabet())
	return nil
}

func (s *shell) loadRel(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rel, err := ecrpq.ParseRelation(f)
	if err != nil {
		return err
	}
	if rel.Name() == "" {
		return fmt.Errorf("relation file %s has no name", path)
	}
	s.registry[rel.Name()] = rel
	fmt.Fprintf(s.out, "loaded relation %s (arity %d)\n", rel.Name(), rel.Arity())
	return nil
}

const helpText = `commands:
  .db <file>        load a database
  .rel <file>       load a custom relation (synchro text format)
  .strategy <name>  auto | generic | reduction
  .query            start a query block (DSL lines follow)
  .go               evaluate the block against the database
  .explain          print the evaluation plan of the block
  .measures         print structural measures + theorem regimes
  .sat              database-independent satisfiability of the block
  .quit             exit
`
