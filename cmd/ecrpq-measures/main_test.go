package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunMeasures(t *testing.T) {
	p := filepath.Join(t.TempDir(), "q.txt")
	src := `
alphabet a b
x -[$p1]-> y
x -[$p2]-> y
rel eqlen(p1, p2)
`
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(p); err != nil {
		t.Errorf("run: %v", err)
	}
	if err := run("/nonexistent"); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	os.WriteFile(bad, []byte("garbage"), 0o644)
	if err := run(bad); err == nil {
		t.Error("malformed query should error")
	}
}
