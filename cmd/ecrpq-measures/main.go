// Command ecrpq-measures prints a query's structural measures (cc_vertex,
// cc_hedge, treewidth of G^node) and the complexity regimes predicted by
// Theorems 3.1 and 3.2 for query families bounded by those values.
//
// Usage:
//
//	ecrpq-measures -query query.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"ecrpq"
	"ecrpq/internal/core"
	"ecrpq/internal/twolevel"
)

func main() {
	queryPath := flag.String("query", "", "query file")
	flag.Parse()
	if *queryPath == "" {
		fmt.Fprintln(os.Stderr, "usage: ecrpq-measures -query <file>")
		os.Exit(2)
	}
	if err := run(*queryPath); err != nil {
		fmt.Fprintln(os.Stderr, "ecrpq-measures:", err)
		os.Exit(1)
	}
}

func run(queryPath string) error {
	f, err := os.Open(queryPath)
	if err != nil {
		return err
	}
	defer f.Close()
	q, err := ecrpq.ReadQuery(f)
	if err != nil {
		return err
	}
	fmt.Println("query:", q.String())
	fmt.Printf("  node variables: %d, path variables: %d, relation atoms: %d\n",
		len(q.NodeVars()), len(q.PathVars()), len(q.Rels))
	if q.IsCRPQ() {
		fmt.Println("  the query is a plain CRPQ")
	}
	m := ecrpq.QueryMeasures(q)
	fmt.Printf("measures (of the normalized abstraction):\n")
	fmt.Printf("  cc_vertex = %d\n", m.CCVertex)
	fmt.Printf("  cc_hedge  = %d\n", m.CCHedge)
	if m.TreewidthExact {
		fmt.Printf("  tw(G^node) = %d (exact)\n", m.TreewidthUpper)
	} else {
		fmt.Printf("  tw(G^node) ∈ [%d, %d] (heuristic bounds)\n", m.TreewidthLower, m.TreewidthUpper)
	}
	ec, pc := twolevel.Classify(true, true, true)
	fmt.Printf("\nfor the family of queries with cc_vertex ≤ %d, cc_hedge ≤ %d, tw ≤ %d:\n",
		m.CCVertex, m.CCHedge, m.TreewidthUpper)
	fmt.Printf("  evaluation (Thm 3.2):               %s\n", ec)
	fmt.Printf("  parameterized evaluation (Thm 3.1): %s\n", pc)
	ecU, pcU := twolevel.Classify(false, true, true)
	fmt.Printf("if instead cc_vertex were unbounded:  %s / %s\n", ecU, pcU)
	ecT, pcT := twolevel.Classify(true, true, false)
	fmt.Printf("if instead treewidth were unbounded:  %s / %s\n", ecT, pcT)

	plan, err := core.Explain(q, core.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("\nevaluation plan:\n%s", plan.String())
	return nil
}
