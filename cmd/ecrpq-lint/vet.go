package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"ecrpq/internal/lint"
)

// vetConfig mirrors the fields of the JSON configuration that cmd/vet
// passes to a -vettool for each package unit (see
// x/tools/go/analysis/unitchecker; we only consume what we need).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package unit on behalf of `go vet -vettool`.
// Findings go to stderr in file:line:col form; exit status 2 signals
// findings to vet, 0 success. Facts are not used by this suite, so the
// vetx output is written empty to satisfy the protocol.
func runVetUnit(cfgFile string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "ecrpq-lint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // facts-only pass: this suite has no facts
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(stderr, err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the compiler's export data, looked up via
	// the PackageFile map after ImportMap canonicalization.
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 1
	}

	pkg := &lint.Package{
		Path:      cfg.ImportPath,
		Dir:       cfg.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	// Vet drives one package unit at a time, so only the per-package
	// analyzers can run here: the module-wide ones (lockorder,
	// governcharge, ctxpoll) need the whole package set and a call graph,
	// and would report nonsense from a single-package view.
	var perPackage []*lint.Analyzer
	for _, a := range analyzers {
		if a.Run != nil {
			perPackage = append(perPackage, a)
		}
	}
	all, err := lint.RunAnalyzers([]*lint.Package{pkg}, perPackage)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// go vet also drives test units; the suite's rules target library
	// code, and tests legitimately panic in helpers and discard errors
	// on intentionally-bad inputs, so _test.go findings are dropped.
	// (The standalone loader never parses test files in the first place.)
	var findings []lint.Finding
	for _, f := range all {
		if !strings.HasSuffix(f.Position.Filename, "_test.go") {
			findings = append(findings, f)
		}
	}
	for _, f := range findings {
		fmt.Fprintf(stderr, "%s:%d:%d: %s\n", f.Position.Filename, f.Position.Line, f.Position.Column,
			strings.TrimSpace(f.Message))
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
