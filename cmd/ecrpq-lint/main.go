// Command ecrpq-lint is the repository's custom static-analysis suite: a
// multichecker over the analyzers in internal/lint. It runs in two
// modes:
//
//   - standalone:  ecrpq-lint [-only a,b] [packages...]
//     loads the named packages (default ./...) from source and prints
//     findings as file:line:col: [analyzer] message, exiting 1 if any.
//
//   - vettool:     go vet -vettool=$(which ecrpq-lint) ./...
//     speaks enough of the cmd/vet unit-checker protocol (-V=full and
//     JSON .cfg invocations) to run under the go toolchain, importing
//     dependencies from the compiler's export data.
//
// Suppress an individual finding with a trailing or preceding comment:
//
//	//ecrpq:ignore <analyzer>[,<analyzer>] -- reason
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ecrpq/internal/lint"
	"ecrpq/internal/lint/alphabetguard"
	"ecrpq/internal/lint/boundedrun"
	"ecrpq/internal/lint/ctxpoll"
	"ecrpq/internal/lint/errcheckstrict"
	"ecrpq/internal/lint/governcharge"
	"ecrpq/internal/lint/lockorder"
	"ecrpq/internal/lint/panicfree"
	"ecrpq/internal/lint/planstats"
	"ecrpq/internal/lint/spanend"
	"ecrpq/internal/lint/statebounds"
	"ecrpq/internal/lint/streamclose"
)

// analyzers is the full suite, in reporting order: the per-package
// checks first, then the module-wide dataflow checks (which go vet unit
// mode skips — they need every package in hand at once).
var analyzers = []*lint.Analyzer{
	panicfree.Analyzer,
	alphabetguard.Analyzer,
	statebounds.Analyzer,
	boundedrun.Analyzer,
	errcheckstrict.Analyzer,
	spanend.Analyzer,
	streamclose.Analyzer,
	lockorder.Analyzer,
	governcharge.Analyzer,
	ctxpoll.Analyzer,
	planstats.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable form of one finding, emitted by
// -json for CI inline annotations.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	// go vet probes the tool's identity with -V=full before use.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Fprintln(stdout, "ecrpq-lint version v1.0.0")
		return 0
	}
	// go vet also asks which flags the tool accepts (-flags); we expose
	// none beyond the protocol, so answer with an empty JSON list.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	// A single *.cfg argument means go vet is driving us per-package.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetUnit(args[0], stderr)
	}

	fs := flag.NewFlagSet("ecrpq-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	asJSON := fs.Bool("json", false, "write findings as a JSON array to stdout (plain findings still go to stderr)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ecrpq-lint [-list] [-json] [-only a,b] [packages...]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, doc)
		}
		return 0
	}
	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	broken := 0
	for _, pkg := range pkgs {
		for _, perr := range pkg.Errors {
			fmt.Fprintf(stderr, "%s: %v\n", pkg.Path, perr)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(stderr, "ecrpq-lint: %d load error(s); fix the build first\n", broken)
		return 2
	}
	findings, err := lint.RunAnalyzers(pkgs, selected)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *asJSON {
		// JSON goes to stdout for tooling; the plain findings go to
		// stderr so a CI problem matcher scanning the step log still sees
		// them. relativize keeps the paths repo-relative, which is what
		// inline annotations need.
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     relativize(f.Position.Filename),
				Line:     f.Position.Line,
				Column:   f.Position.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for _, f := range findings {
			f.Position.Filename = relativize(f.Position.Filename)
			fmt.Fprintln(stderr, f)
		}
	} else {
		for _, f := range findings {
			f.Position.Filename = relativize(f.Position.Filename)
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "ecrpq-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// relativize maps an absolute finding path under the working directory
// to a relative one; paths elsewhere are returned unchanged.
func relativize(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}

// selectAnalyzers resolves the -only flag against the suite.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*lint.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("ecrpq-lint: unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
