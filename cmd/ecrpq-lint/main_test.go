package main

import (
	"bytes"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runIn invokes the checker's entry point from dir, capturing both
// streams and the exit code.
func runIn(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// writeModule materializes a throwaway module from path→contents pairs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const tinyGoMod = "module m\n\ngo 1.22\n"

// TestExitCodeContract pins the process-level contract CI relies on:
// 0 for a clean tree, 1 when diagnostics are reported, 2 when the
// packages cannot be loaded at all.
func TestExitCodeContract(t *testing.T) {
	clean := writeModule(t, map[string]string{
		"go.mod":     tinyGoMod,
		"lib/lib.go": "package lib\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	if code, out, stderr := runIn(t, clean, "./..."); code != 0 {
		t.Errorf("clean tree: exit %d, want 0\nstdout: %s\nstderr: %s", code, out, stderr)
	}

	dirty := writeModule(t, map[string]string{
		"go.mod":     tinyGoMod,
		"lib/lib.go": "package lib\n\nfunc Boom() { panic(\"x\") }\n",
	})
	code, out, stderr := runIn(t, dirty, "./...")
	if code != 1 {
		t.Errorf("tree with findings: exit %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(out, "[panicfree]") {
		t.Errorf("findings must name the analyzer, got:\n%s", out)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr must summarize the finding count, got:\n%s", stderr)
	}

	broken := writeModule(t, map[string]string{
		"go.mod":     tinyGoMod,
		"lib/lib.go": "package lib\n\nfunc (",
	})
	if code, _, _ := runIn(t, broken, "./..."); code != 2 {
		t.Errorf("unloadable tree: exit %d, want 2", code)
	}
}

// TestJSONOutput pins the -json contract: a machine-readable array on
// stdout (repo-relative paths, 1-based positions) and the plain findings
// on stderr so a CI problem matcher scanning the log still sees them.
func TestJSONOutput(t *testing.T) {
	dirty := writeModule(t, map[string]string{
		"go.mod":     tinyGoMod,
		"lib/lib.go": "package lib\n\nfunc Boom() { panic(\"x\") }\n",
	})
	code, out, stderr := runIn(t, dirty, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr)
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("stdout is not a JSON finding array: %v\n%s", err, out)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d JSON findings, want 1: %+v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "panicfree" || f.File != filepath.Join("lib", "lib.go") || f.Line != 3 || f.Column < 1 || f.Message == "" {
		t.Errorf("unexpected JSON finding: %+v", f)
	}
	if !strings.Contains(stderr, "lib.go:3:") || !strings.Contains(stderr, "[panicfree]") {
		t.Errorf("plain findings must still reach stderr under -json, got:\n%s", stderr)
	}

	clean := writeModule(t, map[string]string{
		"go.mod":     tinyGoMod,
		"lib/lib.go": "package lib\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	code, out, _ = runIn(t, clean, "-json", "./...")
	if code != 0 {
		t.Fatalf("clean tree under -json: exit %d, want 0", code)
	}
	var empty []jsonFinding
	if err := json.Unmarshal([]byte(out), &empty); err != nil || len(empty) != 0 {
		t.Errorf("clean tree must emit an empty JSON array, got %q (err %v)", out, err)
	}
}

// copyRepoSubset clones go.mod and the non-test Go files of the given
// top-level directories into dst, preserving layout.
func copyRepoSubset(t *testing.T, root, dst string, dirs ...string) {
	t.Helper()
	mod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, "go.mod"), mod, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		src := filepath.Join(root, d)
		err := filepath.WalkDir(src, func(path string, e fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if e.IsDir() {
				if name := e.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			out := filepath.Join(dst, rel)
			if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(out, data, 0o644)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSeededMutationsAreCaught plants one violation per module analyzer
// in a copy of the real tree and asserts the checker fails with the
// expected diagnostics — the end-to-end regression harness for the
// dataflow checks.
func TestSeededMutationsAreCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and type-checks a subset of the repository")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	copyRepoSubset(t, root, tmp, "internal")

	// The unmutated copy must be clean, so any findings below are caused
	// by the seeded mutants alone.
	args := []string{"-only", "lockorder,governcharge,ctxpoll", "./internal/core", "./internal/server"}
	if code, out, stderr := runIn(t, tmp, args...); code != 0 {
		t.Fatalf("baseline copy not clean: exit %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}

	mutants := map[string]string{
		"internal/core/zz_mutant_charge.go": `package core

func mutantUncharged(n int) [][]int {
	out := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		row := make([]int, i)
		out = append(out, row)
	}
	return out
}
`,
		"internal/server/zz_mutant_lock.go": `package server

import "sync"

type mutantGate struct {
	mu   sync.Mutex
	open bool
}

func (g *mutantGate) tryOpen() bool {
	g.mu.Lock()
	if g.open {
		return false
	}
	g.open = true
	g.mu.Unlock()
	return true
}
`,
		"internal/core/zz_mutant_poll.go": `package core

func mutantSweep(start int, next func(int) []int) int {
	frontier := []int{start}
	visited := 0
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		visited++
		frontier = append(frontier, next(cur)...)
	}
	return visited
}
`,
	}
	for name, src := range mutants {
		if err := os.WriteFile(filepath.Join(tmp, filepath.FromSlash(name)), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	code, out, _ := runIn(t, tmp, args...)
	if code != 1 {
		t.Fatalf("mutated copy: exit %d, want 1\nstdout: %s", code, out)
	}
	for _, want := range []string{
		"zz_mutant_charge.go",
		"[governcharge] make in a loop of mutantUncharged",
		"zz_mutant_lock.go",
		"[lockorder] server.mutantGate.mu is not released on every return path of tryOpen",
		"zz_mutant_poll.go",
		"[ctxpoll] unbounded loop in mutantSweep never polls the context",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("mutated run output missing %q\n%s", want, out)
		}
	}
}
