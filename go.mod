module ecrpq

go 1.22
